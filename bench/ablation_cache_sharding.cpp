// Ablation for the sharded plan cache (core/context.hpp): what lock
// striping buys when many clients with mixed shapes hammer one shared
// transpose_context.  Every warm lookup in the single-lock cache
// (cache_shards = 1) serializes on one mutex; the sharded cache routes
// each key to one of N stripes by the high bits of context_key_hash, so
// disjoint shape families contend only on their own stripe.
//
// Besides the timing table, the binary self-gates deterministically:
//
//   * every thread's buffer must be bit-exact after its traffic (each
//     iteration transposes (m, n) then (n, m), returning to identity);
//   * arena accounting must conserve (created + reused == executions)
//     and clear() must release every retained byte — no cross-shard
//     drift in the atomic byte reservation;
//   * the workload's keys must actually disperse across stripes
//     (otherwise the bench would "win" by measuring nothing).
//
// The timing gate (sharded >= 1.05x the single lock at >= 8 threads) is
// armed only where the host can actually run contended threads in
// parallel (>= 4 logical CPUs); on smaller hosts it self-skips LOUDLY —
// a 1-core box timeslices the threads and the lock is never contended.

#include <cstdio>
#include <thread>
#include <utility>
#include <vector>

#include "core/context.hpp"
#include "util/bench_harness.hpp"
#include "util/matrix.hpp"
#include "util/stats.hpp"
#include "util/threads.hpp"
#include "util/timer.hpp"

namespace {

using namespace inplace;

constexpr int kThreads = 8;  // acceptance: contention at >= 8 threads

/// The shape family thread t hammers: three small shapes whose working
/// sets stay cache-resident, so the timed loop is dominated by plan
/// lookup + arena checkout — exactly the path sharding widens.
std::vector<std::pair<std::uint64_t, std::uint64_t>> thread_shapes(int t) {
  const auto u = static_cast<std::uint64_t>(t);
  return {{16 + u, 20}, {24, 17 + u}, {19 + u, 23 + u}};
}

struct traffic_result {
  double seconds = 0.0;
  bool ok = true;
};

/// Runs the mixed-shape traffic over one context configured with
/// `shards` stripes: kThreads threads, each looping over its own shape
/// family, every iteration a transpose (m, n) followed by (n, m) so the
/// buffer returns to identity.  Verifies bit-exactness, conservation
/// and (for shards > 1) stripe dispersion.
traffic_result run_traffic(std::size_t shards, int iters) {
  context_options copts;
  copts.cache_shards = shards;
  copts.max_plans = 128;  // the whole working set stays cached
  transpose_context ctx(copts);

  traffic_result res;

  // Prime every (shape, orientation) so the timed region is pure warm
  // lookups, then verify the workload actually spans multiple stripes.
  std::size_t used_stripes = 0;
  {
    std::vector<bool> hit(ctx.cache_shards(), false);
    for (int t = 0; t < kThreads; ++t) {
      for (const auto& [m, n] : thread_shapes(t)) {
        auto buf = util::iota_matrix<double>(m, n);
        ctx.transpose(buf.data(), m, n);
        ctx.transpose(buf.data(), n, m);
        for (const auto& [rows, cols] :
             {std::pair{m, n}, std::pair{n, m}}) {
          detail::context_key key;
          key.rows = rows;
          key.cols = cols;
          key.elem_size = sizeof(double);
          key.type_tag = &detail::context_type_tag<double>;
          hit[detail::context_shard_index(key, ctx.cache_shards())] = true;
        }
      }
    }
    for (const bool b : hit) {
      used_stripes += b ? 1u : 0u;
    }
  }
  if (shards > 1 && used_stripes < 4) {
    std::fprintf(stderr,
                 "FAIL: workload keys collapsed into %zu/%zu stripes — "
                 "the contention ablation would measure nothing\n",
                 used_stripes, ctx.cache_shards());
    res.ok = false;
  }

  const context_stats primed = ctx.stats();
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  std::vector<int> bad(kThreads, 0);
  util::timer clk;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ctx, &bad, t, iters] {
      const auto shapes = thread_shapes(t);
      std::vector<std::vector<double>> bufs;
      std::vector<std::vector<double>> pristine;
      for (const auto& [m, n] : shapes) {
        bufs.push_back(util::iota_matrix<double>(m, n));
        pristine.push_back(bufs.back());
      }
      for (int k = 0; k < iters; ++k) {
        const std::size_t s = static_cast<std::size_t>(k) % shapes.size();
        const auto [m, n] = shapes[s];
        ctx.transpose(bufs[s].data(), m, n);
        ctx.transpose(bufs[s].data(), n, m);
      }
      for (std::size_t s = 0; s < bufs.size(); ++s) {
        if (bufs[s] != pristine[s]) {
          bad[static_cast<std::size_t>(t)] = 1;
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  res.seconds = clk.seconds();

  for (int t = 0; t < kThreads; ++t) {
    if (bad[static_cast<std::size_t>(t)] != 0) {
      std::fprintf(stderr,
                   "FAIL: thread %d buffer not bit-exact after its "
                   "transpose pairs (shards=%zu)\n",
                   t, shards);
      res.ok = false;
    }
  }

  // Conservation gates, independent of timing.
  const context_stats after = ctx.stats();
  const std::uint64_t execs = after.executions - primed.executions;
  const std::uint64_t want =
      static_cast<std::uint64_t>(kThreads) *
      static_cast<std::uint64_t>(iters) * 2u;
  if (execs != want) {
    std::fprintf(stderr, "FAIL: executions %llu != expected %llu\n",
                 static_cast<unsigned long long>(execs),
                 static_cast<unsigned long long>(want));
    res.ok = false;
  }
  if (after.arenas_created + after.arenas_reused != after.executions) {
    std::fprintf(stderr,
                 "FAIL: arena conservation (created %llu + reused %llu != "
                 "executions %llu)\n",
                 static_cast<unsigned long long>(after.arenas_created),
                 static_cast<unsigned long long>(after.arenas_reused),
                 static_cast<unsigned long long>(after.executions));
    res.ok = false;
  }
  ctx.clear();
  if (ctx.cached_bytes() != 0) {
    std::fprintf(stderr,
                 "FAIL: %zu retained bytes after clear() — byte-budget "
                 "reservation drift (shards=%zu)\n",
                 ctx.cached_bytes(), shards);
    res.ok = false;
  }
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = util::parse_bench_args(argc, argv);
  util::bench_report rep(
      "ablation_cache_sharding",
      "lock-striped plan cache: mixed-shape clients stop serializing on "
      "one cache mutex",
      cfg);
  telemetry::collector coll;
  telemetry::scoped_sink sink_guard(&coll);
  util::print_banner(
      "Ablation: plan-cache lock striping",
      "sharded (high-hash-bit stripes) vs single-lock cache under "
      "8-thread mixed-shape load");

  const int iters = static_cast<int>(cfg.samples(4000, 200));
  constexpr int kReps = 5;  // interleaved repetitions: robust medians on
                            // noisy (timesliced) hosts, nonzero MAD for
                            // the bench_gate noise band
  const auto topo = util::probe_topology();
  const bool contended = topo.logical >= 4;

  bool ok = true;
  std::printf("  %-4s %-14s %12s %14s\n", "rep", "cache", "wall s",
              "pair ops/s");
  std::vector<double> speedups;
  for (int r = 0; r < kReps; ++r) {
    double single_s = 0.0;
    double sharded_s = 0.0;
    for (const std::size_t shards : {std::size_t{1}, std::size_t{8}}) {
      const traffic_result tr = run_traffic(shards, iters);
      ok = ok && tr.ok;
      const double ops =
          static_cast<double>(kThreads) * static_cast<double>(iters) /
          tr.seconds;
      std::printf("  %-4d %-14s %12.3f %14.0f\n", r,
                  shards == 1 ? "single-lock" : "sharded(8)", tr.seconds,
                  ops);
      rep.add_sample(shards == 1 ? "single_lock_ops" : "sharded_ops",
                     "ops/s", ops);
      (shards == 1 ? single_s : sharded_s) = tr.seconds;
    }
    speedups.push_back(single_s / sharded_s);
    rep.add_sample("sharded_speedup", "x", speedups.back());
  }
  const double speedup = util::median(speedups);
  std::printf("\n  sharded speedup (median of %d): %.2fx "
              "(%d threads, %d logical CPUs)\n",
              kReps, speedup, kThreads, topo.logical);
  rep.note("threads", static_cast<std::uint64_t>(kThreads));
  rep.note("logical_cpus", static_cast<std::uint64_t>(topo.logical));
  rep.note("timing_gate_armed", contended);

  if (contended && speedup < 1.05) {
    std::fprintf(stderr,
                 "ablation_cache_sharding: sharded cache did not beat the "
                 "single lock (%.2fx < 1.05x) under %d-thread load\n",
                 speedup, kThreads);
    ok = false;
  } else if (!contended) {
    std::printf("  (timing gate SKIPPED: %d logical CPU(s) — threads "
                "timeslice, the lock is never contended; deterministic "
                "gates ran in earnest)\n",
                topo.logical);
  }

  rep.attach_telemetry(coll, INPLACE_TELEMETRY_ENABLED != 0);
  rep.write();
  if (!ok) {
    std::fprintf(stderr,
                 "ablation_cache_sharding: deterministic or contention "
                 "gate FAILED\n");
    return 1;
  }
  return 0;
}
