// Ablation for Sections 4.6-4.7: the cache-aware column operations.  The
// reference engine runs Algorithm 1 verbatim (column-at-a-time gathers,
// strided by the row length); the blocked engine replaces every column
// pass with two-phase sub-row rotations and cycle-following row
// permutations.  The paper's GPU implementation leans on the same
// restructuring ("ensuring all cache-lines read and written are utilized
// efficiently").

#include <cstdio>
#include <vector>

#include "core/transpose.hpp"
#include "util/bench_harness.hpp"
#include "util/matrix.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace {

using namespace inplace;

double run(std::uint64_t m, std::uint64_t n, engine_kind engine, int reps) {
  std::vector<double> gbs;
  std::vector<double> buf(m * n);
  options opts;
  opts.engine = engine;
  opts.threads = 1;  // isolate the memory-access effect
  for (int r = 0; r < reps; ++r) {
    util::fill_iota(std::span<double>(buf));
    util::timer clk;
    c2r(buf.data(), m, n, opts);
    gbs.push_back(util::transpose_throughput_gbs(m, n, sizeof(double),
                                                 clk.seconds()));
  }
  return util::median(gbs);
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = util::parse_bench_args(argc, argv);
  util::bench_report rep(
      "ablation_cache_aware",
      "blocked sub-row rotations + cycle-following row permute vs naive "
      "column-at-a-time passes",
      cfg);
  telemetry::collector coll;
  telemetry::scoped_sink sink_guard(&coll);
  util::print_banner(
      "Ablation: Sections 4.6-4.7 cache-aware column operations",
      "blocked sub-row rotations + cycle-following row permute vs naive "
      "column-at-a-time passes");

  const int reps = static_cast<int>(cfg.samples(3, 2));
  const std::pair<std::uint64_t, std::uint64_t> shapes[] = {
      {512, 512}, {1024, 768}, {768, 1024}, {1536, 1536}, {2048, 1024}};
  std::printf("  %-14s %14s %14s %9s\n", "shape", "blocked GB/s",
              "naive GB/s", "speedup");
  for (const auto& [m, n] : shapes) {
    const double blocked = run(m, n, engine_kind::blocked, reps);
    const double naive = run(m, n, engine_kind::reference, reps);
    std::printf("  %6llux%-7llu %14.3f %14.3f %8.2fx\n",
                static_cast<unsigned long long>(m),
                static_cast<unsigned long long>(n), blocked, naive,
                blocked / naive);
    rep.add_sample("blocked_gbs", "GB/s", blocked);
    rep.add_sample("naive_gbs", "GB/s", naive);
  }
  std::printf("\n(the gap widens with array size as naive column passes "
              "touch one cache line per element)\n");

  rep.attach_telemetry(coll, INPLACE_TELEMETRY_ENABLED != 0);
  rep.write();
  return 0;
}
