// Ablation for Section 4.4: arithmetic strength reduction.  The index
// equations are evaluated once per element per pass; replacing hardware
// integer division with the fixed-point-reciprocal multiply ("we found a
// significant performance improvement") is toggled via
// options::strength_reduction.

#include <cstdio>
#include <vector>

#include "core/transpose.hpp"
#include "util/bench_harness.hpp"
#include "util/matrix.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace {

using namespace inplace;

double run(std::uint64_t m, std::uint64_t n, bool strength_reduction,
           int reps) {
  std::vector<double> gbs;
  std::vector<std::uint32_t> buf(m * n);
  options opts;
  opts.strength_reduction = strength_reduction;
  for (int r = 0; r < reps; ++r) {
    util::fill_iota(std::span<std::uint32_t>(buf));
    util::timer clk;
    transpose(buf.data(), m, n, storage_order::row_major, opts);
    gbs.push_back(util::transpose_throughput_gbs(m, n, sizeof(std::uint32_t),
                                                 clk.seconds()));
  }
  return util::median(gbs);
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = util::parse_bench_args(argc, argv);
  util::bench_report rep(
      "ablation_strength_reduction",
      "\"a significant performance improvement\" from reciprocal division "
      "in the index equations",
      cfg);
  telemetry::collector coll;
  telemetry::scoped_sink sink_guard(&coll);
  util::print_banner(
      "Ablation: Section 4.4 arithmetic strength reduction",
      "\"a significant performance improvement\" from reciprocal division "
      "in the index equations");

  const int reps = static_cast<int>(cfg.samples(5, 3));
  struct shape {
    std::uint64_t m, n;
    const char* note;
  };
  const shape shapes[] = {
      {1536, 1024, "divisible extents"},
      {1021, 1531, "prime extents (c = 1)"},
      {2048, 768, "tall"},
      {600000, 7, "skinny (AoS->SoA regime)"},
      {997, 991, "prime, near-square"},
  };
  std::printf("  %-15s %-26s %12s %12s %9s\n", "shape", "", "fastdiv GB/s",
              "plain GB/s", "speedup");
  for (const auto& s : shapes) {
    const double fast = run(s.m, s.n, true, reps);
    const double plain = run(s.m, s.n, false, reps);
    char shape_str[32];
    std::snprintf(shape_str, sizeof shape_str, "%llux%llu",
                  static_cast<unsigned long long>(s.m),
                  static_cast<unsigned long long>(s.n));
    std::printf("  %-15s %-26s %12.3f %12.3f %8.2fx\n", shape_str, s.note,
                fast, plain, fast / plain);
    rep.add_sample("fastdiv_gbs", "GB/s", fast);
    rep.add_sample("plain_div_gbs", "GB/s", plain);
    rep.add_sample("speedup", "ratio", fast / plain);
  }
  std::printf("\n(speedup > 1 confirms the Section 4.4 claim on this "
              "host; the gain concentrates where index math dominates "
              "memory traffic)\n");

  rep.attach_telemetry(coll, INPLACE_TELEMETRY_ENABLED != 0);
  rep.write();
  return 0;
}
