// Ablation for Section 5.2's direction heuristic: "if m > n, use the C2R
// algorithm, otherwise use the R2C algorithm.  This improves the
// performance of our transposition routine and makes it more efficient
// than either the C2R algorithm or the R2C algorithm on their own."

#include <cstdio>
#include <vector>

#include "core/transpose.hpp"
#include "util/bench_harness.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace {

using namespace inplace;

double run_once(std::uint64_t m, std::uint64_t n,
                options::algorithm alg, std::vector<float>& buf) {
  double best = 0.0;
  for (int rep = 0; rep < 2; ++rep) {  // best-of-2 to tame timer noise
    buf.resize(m * n);
    util::fill_iota(std::span<float>(buf));
    options opts;
    opts.alg = alg;
    util::timer clk;
    transpose(buf.data(), m, n, storage_order::row_major, opts);
    best = std::max(best,
                    util::transpose_throughput_gbs(m, n, sizeof(float),
                                                   clk.seconds()));
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = util::parse_bench_args(argc, argv);
  util::bench_report rep(
      "ablation_heuristic",
      "the combined routine beats either direction alone over random "
      "shapes",
      cfg);
  telemetry::collector coll;
  telemetry::scoped_sink sink_guard(&coll);
  util::print_banner(
      "Ablation: Section 5.2 direction heuristic (m > n -> C2R else R2C)",
      "the combined routine beats either direction alone over random "
      "shapes");

  const std::size_t count = cfg.samples(40);
  util::xoshiro256 rng(52);
  std::vector<double> c2r_only;
  std::vector<double> r2c_only;
  std::vector<double> heuristic;
  std::vector<float> buf;
  std::size_t heuristic_wins = 0;
  for (std::size_t k = 0; k < count; ++k) {
    const std::uint64_t m = rng.uniform(128, 2048);
    const std::uint64_t n = rng.uniform(128, 2048);
    const double c = run_once(m, n, options::algorithm::c2r, buf);
    const double r = run_once(m, n, options::algorithm::r2c, buf);
    const double h = run_once(m, n, options::algorithm::automatic, buf);
    c2r_only.push_back(c);
    r2c_only.push_back(r);
    heuristic.push_back(h);
    if (h >= 0.90 * std::max(c, r)) {
      ++heuristic_wins;
    }
  }
  std::printf("  %-22s %10s\n", "strategy", "median GB/s");
  std::printf("  %-22s %10.3f\n", "C2R always", util::median(c2r_only));
  std::printf("  %-22s %10.3f\n", "R2C always", util::median(r2c_only));
  std::printf("  %-22s %10.3f\n", "heuristic (paper)",
              util::median(heuristic));
  std::printf("\nheuristic within 10%% of the better direction on %zu/%zu "
              "random shapes\n",
              heuristic_wins, count);
  std::printf("(paper: the heuristic \"improves the performance ... more "
              "efficient than either on their own\")\n");

  rep.add_series("c2r_always_gbs", "GB/s", c2r_only);
  rep.add_series("r2c_always_gbs", "GB/s", r2c_only);
  rep.add_series("heuristic_gbs", "GB/s", heuristic);
  rep.note("heuristic_wins", static_cast<std::uint64_t>(heuristic_wins));
  rep.note("shapes", static_cast<std::uint64_t>(count));
  rep.attach_telemetry(coll, INPLACE_TELEMETRY_ENABLED != 0);
  rep.write();
  return 0;
}
