// Reproduces Figure 7: in-place transpose throughput for Array of
// Structures -> Structure of Arrays conversion with the skinny-matrix
// specialization.
//
// Paper setup: 10000 random AoS workloads, structure size ~ U[2, 32)
// 64-bit elements, count ~ U[1e4, 1e7), Tesla K20c; median 34.3 GB/s,
// max 51 GB/s — versus 19.5 GB/s median for the general transpose.
//
// Shape claims checked here: the skinny specialization's median beats the
// general (blocked) engine run on the same skinny workloads, and the
// distribution is unimodal with a long right tail toward small structure
// sizes.

#include <cstdio>
#include <vector>

#include "core/transpose.hpp"
#include "cpu/soa.hpp"
#include "util/bench_harness.hpp"
#include "util/csv.hpp"
#include "util/histogram.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace inplace;
  const auto cfg = util::parse_bench_args(argc, argv);
  util::bench_report rep(
      "fig7_aos_soa",
      "K20c: median 34.3 GB/s, max 51 GB/s; skinny specialization beats "
      "the general transpose (19.5)",
      cfg);
  telemetry::collector coll;
  telemetry::scoped_sink sink_guard(&coll);
  util::print_banner(
      "Figure 7 (AoS -> SoA in-place conversion throughput)",
      "K20c: median 34.3 GB/s, max 51 GB/s; skinny specialization beats "
      "the general transpose (19.5)");

  const std::size_t count = cfg.samples(120);
  util::xoshiro256 rng(7);
  std::vector<std::uint64_t> fields(count);
  std::vector<std::uint64_t> counts(count);
  for (std::size_t k = 0; k < count; ++k) {
    fields[k] = rng.uniform(2, 32);
    counts[k] = rng.uniform(10'000, 1'000'000);
  }
  std::printf("samples: %zu conversions, struct size ~ U[2,32) x 64-bit, "
              "count ~ U[1e4,1e6)\n\n",
              count);

  std::vector<double> skinny_gbs;
  std::vector<double> general_gbs;
  std::vector<double> buf;
  options general;
  general.engine = engine_kind::blocked;
  general.threads = cfg.threads;
  options skinny;
  skinny.threads = cfg.threads;  // planner picks the skinny engine
  for (std::size_t k = 0; k < count; ++k) {
    buf.resize(counts[k] * fields[k]);
    util::fill_iota(std::span<double>(buf));
    util::timer clk;
    aos_to_soa(buf.data(), counts[k], fields[k], skinny);
    skinny_gbs.push_back(util::transpose_throughput_gbs(
        counts[k], fields[k], sizeof(double), clk.seconds()));

    util::fill_iota(std::span<double>(buf));
    clk.reset();
    aos_to_soa(buf.data(), counts[k], fields[k], general);
    general_gbs.push_back(util::transpose_throughput_gbs(
        counts[k], fields[k], sizeof(double), clk.seconds()));
  }

  const double hi = util::quantile(skinny_gbs, 0.99) * 1.05;
  util::histogram h(0.0, hi <= 0 ? 1.0 : hi, 16);
  h.add(skinny_gbs);
  std::printf("[Fig 7] AoS->SoA conversion throughput (skinny engine)\n%s",
              h.render(44, util::median(skinny_gbs)).c_str());

  std::printf("\n  %-26s %10s %10s\n", "", "paper", "here");
  std::printf("  %-26s %10.1f %10.3f\n", "skinny median GB/s", 34.3,
              util::median(skinny_gbs));
  std::printf("  %-26s %10.1f %10.3f\n", "skinny max GB/s", 51.0,
              util::max_value(skinny_gbs));
  std::printf("  %-26s %10.1f %10.3f\n", "general engine median", 19.5,
              util::median(general_gbs));
  std::printf("\nshape check: skinny/general median = %.2fx (paper: "
              "1.76x)\n",
              util::median(skinny_gbs) / util::median(general_gbs));

  if (cfg.csv_path) {
    util::csv_writer csv(*cfg.csv_path);
    csv.row("count", "fields", "skinny_gbs", "general_gbs");
    for (std::size_t k = 0; k < count; ++k) {
      csv.row(counts[k], fields[k], skinny_gbs[k], general_gbs[k]);
    }
  }

  rep.add_series("skinny_gbs", "GB/s", skinny_gbs);
  rep.add_series("general_gbs", "GB/s", general_gbs);
  rep.note("workloads", static_cast<std::uint64_t>(count));
  rep.attach_telemetry(coll, INPLACE_TELEMETRY_ENABLED != 0);
  rep.write();
  return 0;
}
