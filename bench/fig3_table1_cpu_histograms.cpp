// Reproduces Figure 3 and Table 1: throughput histograms and medians of
// in-place matrix transposition on the CPU, over randomly sized matrices
// of 64-bit elements.
//
// Paper setup: 1000 matrices, m,n ~ U[1000, 10000), Intel i7 950
// (4C/8T); rows: Intel MKL 0.067, C2R 1 thread 0.336, C2R 8 threads 1.26,
// Gustavson et al. 1.27 GB/s (medians).
//
// Substitutions (DESIGN.md §2): MKL's closed-source serial cycle follower
// -> our cycle-following baseline; Gustavson's code -> our square-block
// tiled baseline.  Extents are scaled down (default U[256, 2048)) to keep
// the default run under a minute; scale up with --scale or
// INPLACE_BENCH_SCALE.
//
// Shape claims checked: C2R(1T) substantially beats serial cycle
// following; the multithreaded row exists (speedup requires >1 core);
// the tiled baseline is competitive with C2R on conveniently sized
// arrays.

#include <cstdio>
#include <vector>

#include "baselines/cycle_follow.hpp"
#include "baselines/gustavson_like.hpp"
#include "core/transpose.hpp"
#include "util/bench_harness.hpp"
#include "util/csv.hpp"
#include "util/histogram.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/threads.hpp"
#include "util/timer.hpp"

namespace {

using namespace inplace;

struct sample_set {
  std::vector<std::uint64_t> ms;
  std::vector<std::uint64_t> ns;
};

sample_set draw_extents(std::size_t count, std::uint64_t lo,
                        std::uint64_t hi) {
  util::xoshiro256 rng(20140215);
  sample_set s;
  for (std::size_t k = 0; k < count; ++k) {
    s.ms.push_back(rng.uniform(lo, hi));
    s.ns.push_back(rng.uniform(lo, hi));
  }
  return s;
}

template <typename Fn>
std::vector<double> run_series(const sample_set& s, const char* name,
                               Fn transpose_fn) {
  std::vector<double> gbs;
  std::vector<double> buf;
  gbs.reserve(s.ms.size());
  for (std::size_t k = 0; k < s.ms.size(); ++k) {
    const std::uint64_t m = s.ms[k];
    const std::uint64_t n = s.ns[k];
    buf.resize(m * n);
    util::fill_iota(std::span<double>(buf));
    util::timer clk;
    transpose_fn(buf.data(), m, n);
    gbs.push_back(
        util::transpose_throughput_gbs(m, n, sizeof(double), clk.seconds()));
  }
  std::printf("  %-24s median %7.3f GB/s   (min %.3f, max %.3f)\n", name,
              util::median(gbs), util::min_value(gbs), util::max_value(gbs));
  return gbs;
}

void print_histogram(const char* name, const std::vector<double>& gbs) {
  double hi = util::quantile(gbs, 0.99);  // clamp outliers, as in the paper
  hi = hi <= 0 ? 1.0 : hi * 1.05;
  util::histogram h(0.0, hi, 16);
  h.add(gbs);
  std::printf("\n%s\n%s", name, h.render(44, util::median(gbs)).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = util::parse_bench_args(argc, argv);
  util::bench_report rep(
      "fig3_table1_cpu_histograms",
      "median GB/s: MKL 0.067 | C2R 1T 0.336 | C2R 8T 1.26 | Gustavson "
      "1.27 (i7 950; here: scaled extents, this host)",
      cfg);
  telemetry::collector coll;
  telemetry::scoped_sink sink_guard(&coll);
  util::print_banner(
      "Figure 3 + Table 1 (CPU in-place transpose throughput histograms)",
      "median GB/s: MKL 0.067 | C2R 1T 0.336 | C2R 8T 1.26 | Gustavson "
      "1.27 (i7 950; here: scaled extents, this host)");

  const std::size_t count = cfg.samples(60);
  const auto extents = draw_extents(count, 256, 2048);
  std::printf("samples: %zu matrices, m,n ~ U[256,2048), 64-bit elements, "
              "%d hardware thread(s)\n\n",
              count, util::hardware_threads());

  options one_thread;
  one_thread.threads = 1;
  options all_threads;
  all_threads.threads = cfg.threads;

  const auto mkl_sub = run_series(
      extents, "cycle-following (MKL sub)",
      [](double* a, std::uint64_t m, std::uint64_t n) {
        baselines::cycle_following_transpose(a, m, n);
      });
  const auto c2r_1t = run_series(
      extents, "C2R, 1 thread",
      [&](double* a, std::uint64_t m, std::uint64_t n) {
        transpose(a, m, n, storage_order::row_major, one_thread);
      });
  const auto c2r_nt = run_series(
      extents, "C2R, all threads",
      [&](double* a, std::uint64_t m, std::uint64_t n) {
        transpose(a, m, n, storage_order::row_major, all_threads);
      });
  const auto gust = run_series(
      extents, "Gustavson-like tiled",
      [](double* a, std::uint64_t m, std::uint64_t n) {
        baselines::gustavson_like_transpose(a, m, n);
      });

  print_histogram("[Fig 3a] cycle-following (MKL substitute)", mkl_sub);
  print_histogram("[Fig 3b] C2R, 1 thread", c2r_1t);
  print_histogram("[Fig 3c] C2R, all threads", c2r_nt);
  print_histogram("[Fig 3d] Gustavson-like tiled", gust);

  std::printf("\n[Table 1] Median in-place transposition throughputs "
              "(GB/s, 64-bit elements)\n");
  std::printf("  %-34s %10s %10s\n", "implementation", "paper", "here");
  std::printf("  %-34s %10.3f %10.3f\n", "Intel MKL / cycle-following",
              0.067, util::median(mkl_sub));
  std::printf("  %-34s %10.3f %10.3f\n", "C2R, 1 thread", 0.336,
              util::median(c2r_1t));
  std::printf("  %-34s %10.3f %10.3f\n", "C2R, all threads (paper: 8T)",
              1.26, util::median(c2r_nt));
  std::printf("  %-34s %10.3f %10.3f\n", "Gustavson et al. / tiled", 1.27,
              util::median(gust));
  std::printf("\nshape check: C2R(1T)/cycle-following = %.1fx (paper: "
              "5.0x)\n",
              util::median(c2r_1t) / util::median(mkl_sub));

  // The paper's i7 950 has an 8 MB LLC, so its U[1000,10000) samples are
  // all far out of cache; this host's LLC is hundreds of MB, which mutes
  // the random-access penalty of cycle following at histogram scale.  One
  // out-of-LLC spotlight restores the regime the paper measured.
  {
    const std::uint64_t m = static_cast<std::uint64_t>(5376 * cfg.scale) +
                            1792;  // ~>LLC at scale 1
    const std::uint64_t n = 7000;
    std::printf("\nout-of-LLC spotlight (%llux%llu doubles, %.0f MB):\n",
                static_cast<unsigned long long>(m),
                static_cast<unsigned long long>(n), double(m * n * 8) / 1e6);
    std::vector<double> big(m * n);
    auto one = [&](const char* name, auto fn) {
      util::fill_iota(std::span<double>(big));
      util::timer clk;
      fn(big.data(), m, n);
      const double g = util::transpose_throughput_gbs(m, n, sizeof(double),
                                                      clk.seconds());
      std::printf("  %-26s %7.3f GB/s\n", name, g);
      return g;
    };
    const double cyc = one("cycle-following", [](double* a, std::uint64_t mm,
                                                 std::uint64_t nn) {
      baselines::cycle_following_transpose(a, mm, nn);
    });
    const double dec = one("C2R (decomposition)",
                           [&](double* a, std::uint64_t mm, std::uint64_t nn) {
                             transpose(a, mm, nn, storage_order::row_major,
                                       all_threads);
                           });
    std::printf("  decomposition/cycle-following gap out of cache: %.1fx\n",
                dec / cyc);
    rep.add_sample("spotlight_cycle_following_gbs", "GB/s", cyc);
    rep.add_sample("spotlight_c2r_gbs", "GB/s", dec);
  }

  if (cfg.csv_path) {
    util::csv_writer csv(*cfg.csv_path);
    csv.row("m", "n", "mkl_sub_gbs", "c2r_1t_gbs", "c2r_nt_gbs",
            "gustavson_gbs");
    for (std::size_t k = 0; k < extents.ms.size(); ++k) {
      csv.row(extents.ms[k], extents.ns[k], mkl_sub[k], c2r_1t[k],
              c2r_nt[k], gust[k]);
    }
  }

  rep.add_series("cycle_following_gbs", "GB/s", mkl_sub);
  rep.add_series("c2r_1t_gbs", "GB/s", c2r_1t);
  rep.add_series("c2r_all_threads_gbs", "GB/s", c2r_nt);
  rep.add_series("gustavson_like_gbs", "GB/s", gust);
  rep.note("matrices", static_cast<std::uint64_t>(count));
  rep.note("hardware_threads", util::hardware_threads());
  rep.attach_telemetry(coll, INPLACE_TELEMETRY_ENABLED != 0);
  rep.write();
  return 0;
}
