// Reproduces Figure 9: random-index Array-of-Structures scatter and
// gather bandwidth versus structure size.
//
// Paper setup: Tesla K20c; throughput improves as the structure size
// approaches the cache-line width, with the cooperative C2R access on
// top; indices are exchanged between lanes with shuffles.
//
// Reproductions: (a) coalescing-model predictions for K20c parameters;
// (b) measured CPU kernels (struct-major vs field-major random gather/
// scatter) showing the same ordering on real hardware.

#include <cstdio>
#include <vector>

#include "memsim/bandwidth_model.hpp"
#include "simd/cpu_kernels.hpp"
#include "util/ascii_plot.hpp"
#include "util/bench_harness.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace inplace;

util::series to_series(const char* name,
                       const std::vector<memsim::bandwidth_point>& pts) {
  util::series s;
  s.name = name;
  for (const auto& p : pts) {
    s.x.push_back(static_cast<double>(p.struct_bytes));
    s.y.push_back(p.gbs);
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = util::parse_bench_args(argc, argv);
  util::bench_report rep(
      "fig9_random_aos",
      "K20c: C2R highest; throughput rises toward the cache-line width "
      "for all strategies",
      cfg);
  telemetry::collector coll;
  telemetry::scoped_sink sink_guard(&coll);
  util::print_banner(
      "Figure 9 (random AoS scatter / gather bandwidth vs struct size)",
      "K20c: C2R highest; throughput rises toward the cache-line width "
      "for all strategies");

  std::vector<std::uint64_t> sizes;
  for (std::uint64_t b = 4; b <= 64; b += 4) {
    sizes.push_back(b);
  }
  memsim::pattern_params base;
  base.num_structs = static_cast<std::uint64_t>(4096 * cfg.scale);

  using memsim::access_kind;
  using memsim::locality;
  const auto c2r = memsim::sweep_struct_sizes(access_kind::c2r,
                                              locality::random, sizes, base);
  const auto direct = memsim::sweep_struct_sizes(access_kind::direct,
                                                 locality::random, sizes,
                                                 base);
  const auto vec = memsim::sweep_struct_sizes(access_kind::vector,
                                              locality::random, sizes, base);

  std::printf("%s\n",
              util::line_chart({to_series("C2R", c2r),
                                to_series("Vector", vec),
                                to_series("Direct", direct)},
                               "[Fig 9a/9b, modelled] random AoS scatter/"
                               "gather bandwidth (K20c parameters)",
                               "struct bytes", "GB/s")
                  .c_str());
  std::printf("  %10s %10s %10s %10s\n", "bytes", "C2R GB/s", "Vector",
              "Direct");
  for (std::size_t k = 0; k < sizes.size(); ++k) {
    std::printf("  %10llu %10.1f %10.1f %10.1f\n",
                static_cast<unsigned long long>(sizes[k]), c2r[k].gbs,
                vec[k].gbs, direct[k].gbs);
  }

  // --- measured CPU analogue ---------------------------------------------
  std::printf("\n[Fig 9, measured on this CPU] random gather/scatter of "
              "float structs:\n");
  std::printf("  %10s %14s %14s %14s %14s\n", "bytes", "gath-coal GB/s",
              "gath-direct", "scat-coal", "scat-direct");
  const std::size_t pool = static_cast<std::size_t>(1'000'000 * cfg.scale);
  const std::size_t requests = pool / 4;
  util::xoshiro256 rng(9);
  std::vector<std::uint64_t> idx(requests);
  for (auto& i : idx) {
    i = rng.uniform(0, pool);
  }
  for (std::size_t fields = 1; fields <= 16;
       fields += (fields < 4 ? 1 : 4)) {
    std::vector<float> aos(pool * fields, 1.0f);
    std::vector<float> out(requests * fields);
    const double bytes = 2.0 * double(requests * fields * sizeof(float));

    util::timer clk;
    simd::gather_structs_coalesced(out.data(), aos.data(), idx.data(),
                                   requests, fields);
    const double g_coal = bytes / clk.seconds() * 1e-9;
    clk.reset();
    simd::gather_structs_direct(out.data(), aos.data(), idx.data(),
                                requests, fields);
    const double g_dir = bytes / clk.seconds() * 1e-9;
    clk.reset();
    simd::scatter_structs_coalesced(aos.data(), out.data(), idx.data(),
                                    requests, fields);
    const double s_coal = bytes / clk.seconds() * 1e-9;
    clk.reset();
    simd::scatter_structs_direct(aos.data(), out.data(), idx.data(),
                                 requests, fields);
    const double s_dir = bytes / clk.seconds() * 1e-9;
    std::printf("  %10zu %14.2f %14.2f %14.2f %14.2f\n",
                fields * sizeof(float), g_coal, g_dir, s_coal, s_dir);
    rep.add_sample("measured_gather_coalesced_gbs", "GB/s", g_coal);
    rep.add_sample("measured_gather_direct_gbs", "GB/s", g_dir);
    rep.add_sample("measured_scatter_coalesced_gbs", "GB/s", s_coal);
    rep.add_sample("measured_scatter_direct_gbs", "GB/s", s_dir);
  }
  std::printf("(struct-major = cooperative/C2R analogue; field-major = "
              "compiler-generated analogue)\n");

  if (cfg.csv_path) {
    util::csv_writer csv(*cfg.csv_path);
    csv.row("struct_bytes", "model_c2r_gbs", "model_vector_gbs",
            "model_direct_gbs");
    for (std::size_t k = 0; k < sizes.size(); ++k) {
      csv.row(sizes[k], c2r[k].gbs, vec[k].gbs, direct[k].gbs);
    }
  }

  auto model_gbs = [](const std::vector<memsim::bandwidth_point>& pts) {
    std::vector<double> out;
    out.reserve(pts.size());
    for (const auto& p : pts) {
      out.push_back(p.gbs);
    }
    return out;
  };
  rep.add_series("model_c2r_gbs", "GB/s", model_gbs(c2r));
  rep.add_series("model_vector_gbs", "GB/s", model_gbs(vec));
  rep.add_series("model_direct_gbs", "GB/s", model_gbs(direct));
  rep.attach_telemetry(coll, INPLACE_TELEMETRY_ENABLED != 0);
  rep.write();
  return 0;
}
