// Reproduces Figure 6 and Table 2: throughput histograms of in-place
// transposition comparing Sung's tiled algorithm (32-bit elements) with
// the decomposition (32- and 64-bit elements).
//
// Paper setup: m,n ~ U[1000, 20000) on a Tesla K20c; medians Sung(float)
// 5.33, C2R(float) 14.23, C2R(double) 19.53 GB/s; 2155 of 2500 arrays
// completed correctly under Sung's code (tile-divisibility trouble).
//
// Substitution: Sung's GPU code -> our tiled baseline with the paper's
// own factor-product tile heuristic (t = 72).  Shape claims checked:
// C2R(float) clearly beats the tiled baseline's median; the tiled
// baseline has a heavy low-throughput tail on inconveniently sized
// arrays; C2R(double) >= C2R(float).

#include <cstdio>
#include <vector>

#include "baselines/sung_tiled.hpp"
#include "core/transpose.hpp"
#include "util/bench_harness.hpp"
#include "util/csv.hpp"
#include "util/histogram.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace {

using namespace inplace;

template <typename T, typename Fn>
std::vector<double> run_series(const std::vector<std::uint64_t>& ms,
                               const std::vector<std::uint64_t>& ns,
                               const char* name, Fn transpose_fn) {
  std::vector<double> gbs;
  std::vector<T> buf;
  for (std::size_t k = 0; k < ms.size(); ++k) {
    buf.resize(ms[k] * ns[k]);
    util::fill_iota(std::span<T>(buf));
    util::timer clk;
    transpose_fn(buf.data(), ms[k], ns[k]);
    gbs.push_back(util::transpose_throughput_gbs(ms[k], ns[k], sizeof(T),
                                                 clk.seconds()));
  }
  std::printf("  %-22s median %7.3f GB/s   (min %.3f, max %.3f)\n", name,
              util::median(gbs), util::min_value(gbs), util::max_value(gbs));
  return gbs;
}

void print_histogram(const char* name, const std::vector<double>& gbs) {
  double hi = util::quantile(gbs, 0.99) * 1.05;
  if (hi <= 0) {
    hi = 1.0;
  }
  util::histogram h(0.0, hi, 16);
  h.add(gbs);
  std::printf("\n%s\n%s", name, h.render(44, util::median(gbs)).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = util::parse_bench_args(argc, argv);
  util::bench_report rep(
      "fig6_table2_histograms",
      "K20c medians GB/s: Sung(float) 5.33 | C2R(float) 14.23 | "
      "C2R(double) 19.53",
      cfg);
  telemetry::collector coll;
  telemetry::scoped_sink sink_guard(&coll);
  util::print_banner(
      "Figure 6 + Table 2 (tiled baseline vs decomposition histograms)",
      "K20c medians GB/s: Sung(float) 5.33 | C2R(float) 14.23 | "
      "C2R(double) 19.53");

  const std::size_t count = cfg.samples(60);
  util::xoshiro256 rng(26);
  std::vector<std::uint64_t> ms(count);
  std::vector<std::uint64_t> ns(count);
  std::size_t well_tiled = 0;
  for (std::size_t k = 0; k < count; ++k) {
    ms[k] = rng.uniform(256, 2048);
    ns[k] = rng.uniform(256, 2048);
    well_tiled += baselines::choose_tiles(ms[k], ns[k]).well_tiled ? 1 : 0;
  }
  std::printf("samples: %zu matrices, m,n ~ U[256,2048); tile heuristic "
              "found good tiles on %zu/%zu (paper: 2155/2500 completed)\n\n",
              count, well_tiled, count);

  options opts;
  opts.threads = cfg.threads;
  const auto sung = run_series<float>(
      ms, ns, "Sung-like (float)",
      [](float* a, std::uint64_t m, std::uint64_t n) {
        baselines::sung_tiled_transpose(a, m, n);
      });
  const auto c2r_f = run_series<float>(
      ms, ns, "C2R (float)",
      [&](float* a, std::uint64_t m, std::uint64_t n) {
        transpose(a, m, n, storage_order::row_major, opts);
      });
  const auto c2r_d = run_series<double>(
      ms, ns, "C2R (double)",
      [&](double* a, std::uint64_t m, std::uint64_t n) {
        transpose(a, m, n, storage_order::row_major, opts);
      });

  print_histogram("[Fig 6a] Sung-like tiled (float)", sung);
  print_histogram("[Fig 6b] C2R (float)", c2r_f);
  print_histogram("[Fig 6c] C2R (double)", c2r_d);

  std::printf("\n[Table 2] Median in-place transposition throughputs "
              "(GB/s)\n");
  std::printf("  %-26s %10s %10s\n", "implementation", "paper", "here");
  std::printf("  %-26s %10.2f %10.3f\n", "Sung [6] / tiled (float)", 5.33,
              util::median(sung));
  std::printf("  %-26s %10.2f %10.3f\n", "C2R (float)", 14.23,
              util::median(c2r_f));
  std::printf("  %-26s %10.2f %10.3f\n", "C2R (double)", 19.53,
              util::median(c2r_d));
  std::printf("\nshape checks: C2R(float)/Sung = %.2fx (paper 2.7x); "
              "C2R(double)/C2R(float) = %.2fx (paper 1.37x)\n",
              util::median(c2r_f) / util::median(sung),
              util::median(c2r_d) / util::median(c2r_f));

  // The paper's core point about tiled algorithms: "Tiled algorithms
  // perform poorly on arrays with inconvenient dimensions."  Split the
  // tiled baseline's samples by whether the factor heuristic found good
  // tiles; C2R has no such sensitivity.
  std::vector<double> sung_good;
  std::vector<double> sung_bad;
  std::vector<double> c2r_good;
  std::vector<double> c2r_bad;
  for (std::size_t k = 0; k < count; ++k) {
    const bool good = baselines::choose_tiles(ms[k], ns[k]).well_tiled;
    (good ? sung_good : sung_bad).push_back(sung[k]);
    (good ? c2r_good : c2r_bad).push_back(c2r_f[k]);
  }
  if (!sung_good.empty() && !sung_bad.empty()) {
    std::printf("dimension sensitivity (median GB/s, float):\n");
    std::printf("  %-18s %14s %14s %14s\n", "", "good tiles",
                "degenerate", "penalty");
    std::printf("  %-18s %14.3f %14.3f %13.2fx\n", "Sung-like tiled",
                util::median(sung_good), util::median(sung_bad),
                util::median(sung_good) / util::median(sung_bad));
    std::printf("  %-18s %14.3f %14.3f %13.2fx\n", "C2R",
                util::median(c2r_good), util::median(c2r_bad),
                util::median(c2r_good) / util::median(c2r_bad));
    std::printf("(paper: only 2155/2500 arrays completed under Sung's "
                "code; C2R is shape-insensitive)\n");
  }

  if (cfg.csv_path) {
    util::csv_writer csv(*cfg.csv_path);
    csv.row("m", "n", "sung_float_gbs", "c2r_float_gbs", "c2r_double_gbs");
    for (std::size_t k = 0; k < count; ++k) {
      csv.row(ms[k], ns[k], sung[k], c2r_f[k], c2r_d[k]);
    }
  }

  rep.add_series("sung_float_gbs", "GB/s", sung);
  rep.add_series("c2r_float_gbs", "GB/s", c2r_f);
  rep.add_series("c2r_double_gbs", "GB/s", c2r_d);
  rep.note("matrices", static_cast<std::uint64_t>(count));
  rep.note("well_tiled", static_cast<std::uint64_t>(well_tiled));
  rep.attach_telemetry(coll, INPLACE_TELEMETRY_ENABLED != 0);
  rep.write();
  return 0;
}
