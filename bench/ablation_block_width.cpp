// Ablation for the Section 4.6 design choice that sub-rows should match
// the cache-line size: sweeps the cache-aware engines' sub-row width and
// reports throughput.  Too narrow wastes line bandwidth on the random-row
// moves; too wide overflows the head buffers' cache residency.

#include <cstdio>
#include <vector>

#include "core/transpose.hpp"
#include "util/bench_harness.hpp"
#include "util/matrix.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace {

using namespace inplace;

double run(std::uint64_t m, std::uint64_t n, std::size_t block_bytes,
           int reps) {
  std::vector<double> gbs;
  std::vector<double> buf(m * n);
  options opts;
  opts.block_bytes = block_bytes;
  opts.engine = engine_kind::blocked;
  for (int r = 0; r < reps; ++r) {
    util::fill_iota(std::span<double>(buf));
    util::timer clk;
    transpose(buf.data(), m, n, storage_order::row_major, opts);
    gbs.push_back(util::transpose_throughput_gbs(m, n, sizeof(double),
                                                 clk.seconds()));
  }
  return util::max_value(gbs);
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = util::parse_bench_args(argc, argv);
  util::bench_report rep(
      "ablation_block_width",
      "sub-rows sized to cache lines maximize the cache-aware rotations' "
      "line utilization",
      cfg);
  telemetry::collector coll;
  telemetry::scoped_sink sink_guard(&coll);
  util::print_banner(
      "Ablation: Section 4.6 sub-row width (cache-line matching)",
      "sub-rows sized to cache lines maximize the cache-aware rotations' "
      "line utilization");

  const int reps = static_cast<int>(cfg.samples(3, 2));
  const std::size_t widths[] = {16, 32, 64, 128, 256, 512, 1024};
  const std::pair<std::uint64_t, std::uint64_t> shapes[] = {
      {1024, 768}, {1536, 1536}, {2048, 1024}};
  std::printf("  %-12s", "width bytes");
  for (const auto& [m, n] : shapes) {
    std::printf(" %6llux%-6llu", static_cast<unsigned long long>(m),
                static_cast<unsigned long long>(n));
  }
  std::printf("   (GB/s, 64-bit elements, best of %d)\n", reps);
  for (const std::size_t w : widths) {
    std::printf("  %-12zu", w);
    const std::string series = "width_" + std::to_string(w) + "_gbs";
    for (const auto& [m, n] : shapes) {
      const double gbs = run(m, n, w, reps);
      std::printf(" %13.3f", gbs);
      rep.add_sample(series, "GB/s", gbs);
    }
    std::printf("%s\n", w == 128 ? "   <- default (one cache line)" : "");
  }

  rep.attach_telemetry(coll, INPLACE_TELEMETRY_ENABLED != 0);
  rep.write();
  return 0;
}
