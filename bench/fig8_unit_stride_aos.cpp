// Reproduces Figure 8: unit-stride Array-of-Structures store and copy
// bandwidth versus structure size, for the three access strategies —
// compiler-generated element-wise ("Direct"), native 128-bit vector
// accesses ("Vector"), and the in-register transpose ("C2R").
//
// Paper setup: Tesla K20c, structures of 0-64 bytes; C2R ~ full bandwidth
// (~180 GB/s flat), Vector in between, Direct lowest (up to 45x slower
// for stores).
//
// Two reproductions (DESIGN.md §2):
//   (a) the coalescing model predicts each curve for K20c parameters —
//       exact shape reproduction;
//   (b) measured CPU kernels: field-major (strided) vs transpose-staged
//       SoA->AoS copies show the same strided-vs-contiguous gap on real
//       hardware.

#include <cstdio>
#include <vector>

#include "memsim/bandwidth_model.hpp"
#include "simd/cpu_kernels.hpp"
#include "simd/vectorized.hpp"
#include "util/ascii_plot.hpp"
#include "util/bench_harness.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace {

using namespace inplace;

util::series to_series(const char* name,
                       const std::vector<memsim::bandwidth_point>& pts,
                       double scale = 1.0) {
  util::series s;
  s.name = name;
  for (const auto& p : pts) {
    s.x.push_back(static_cast<double>(p.struct_bytes));
    s.y.push_back(p.gbs * scale);
  }
  return s;
}

void print_rows(const char* title,
                const std::vector<memsim::bandwidth_point>& c2r,
                const std::vector<memsim::bandwidth_point>& direct,
                const std::vector<memsim::bandwidth_point>& vec) {
  std::printf("%s\n  %10s %10s %10s %10s %10s\n", title, "bytes",
              "C2R GB/s", "Vector", "Direct", "C2R/Direct");
  for (std::size_t k = 0; k < c2r.size(); ++k) {
    std::printf("  %10llu %10.1f %10.1f %10.1f %9.1fx\n",
                static_cast<unsigned long long>(c2r[k].struct_bytes),
                c2r[k].gbs, vec[k].gbs, direct[k].gbs,
                c2r[k].gbs / direct[k].gbs);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = util::parse_bench_args(argc, argv);
  util::bench_report rep(
      "fig8_unit_stride_aos",
      "K20c: C2R ~180 GB/s flat; Vector mid; Direct low (up to 45x gap); "
      "store and copy panels",
      cfg);
  telemetry::collector coll;
  telemetry::scoped_sink sink_guard(&coll);
  util::print_banner(
      "Figure 8 (unit-stride AoS store / copy bandwidth vs struct size)",
      "K20c: C2R ~180 GB/s flat; Vector mid; Direct low (up to 45x gap); "
      "store and copy panels");

  std::vector<std::uint64_t> sizes;
  for (std::uint64_t b = 4; b <= 64; b += 4) {
    sizes.push_back(b);
  }
  memsim::pattern_params base;
  base.num_structs = static_cast<std::uint64_t>(4096 * cfg.scale);

  // --- (a) model-predicted K20c curves -----------------------------------
  using memsim::access_kind;
  using memsim::locality;
  const auto c2r = memsim::sweep_struct_sizes(access_kind::c2r,
                                              locality::unit_stride, sizes,
                                              base);
  const auto direct = memsim::sweep_struct_sizes(
      access_kind::direct, locality::unit_stride, sizes, base);
  const auto vec = memsim::sweep_struct_sizes(
      access_kind::vector, locality::unit_stride, sizes, base);

  // Store panel: one pass of traffic.  Copy panel: load + store — same
  // efficiency per pass, so the curves coincide up to the shared peak.
  std::printf("%s\n",
              util::line_chart({to_series("C2R", c2r),
                                to_series("Vector", vec),
                                to_series("Direct", direct)},
                               "[Fig 8a/8b, modelled] unit-stride AoS "
                               "store/copy bandwidth (K20c parameters)",
                               "struct bytes", "GB/s")
                  .c_str());
  print_rows("[Fig 8, modelled] predicted bandwidth:", c2r, direct, vec);

  // --- (b) measured CPU analogue -----------------------------------------
  std::printf("\n[Fig 8, measured on this CPU] SoA->AoS copy (store "
              "direction), float fields:\n");
  std::printf("  %10s %12s %12s %12s %9s\n", "bytes", "tile GB/s",
              "staged GB/s", "strided GB/s", "tile/str");
  const std::size_t count = static_cast<std::size_t>(1'000'000 * cfg.scale);
  util::series meas_tile{"regtile", {}, {}};
  util::series meas_staged{"staged", {}, {}};
  util::series meas_direct{"strided", {}, {}};
  for (std::size_t fields = 1; fields <= 16; fields += (fields < 4 ? 1 : 4)) {
    std::vector<float> soa(count * fields);
    std::vector<float> aos(count * fields);
    util::timer clk;
    simd::soa_to_aos_vectorized(aos.data(), soa.data(), count, fields);
    const double t_tile = clk.seconds();
    clk.reset();
    simd::soa_to_aos_staged(aos.data(), soa.data(), count, fields);
    const double t_staged = clk.seconds();
    clk.reset();
    simd::soa_to_aos_direct(aos.data(), soa.data(), count, fields);
    const double t_direct = clk.seconds();
    const double bytes = 2.0 * double(count * fields * sizeof(float));
    const double g_tile = bytes / t_tile * 1e-9;
    const double g_staged = bytes / t_staged * 1e-9;
    const double g_direct = bytes / t_direct * 1e-9;
    std::printf("  %10zu %12.2f %12.2f %12.2f %8.2fx\n",
                fields * sizeof(float), g_tile, g_staged, g_direct,
                g_tile / g_direct);
    meas_tile.x.push_back(double(fields * sizeof(float)));
    meas_tile.y.push_back(g_tile);
    meas_staged.x.push_back(double(fields * sizeof(float)));
    meas_staged.y.push_back(g_staged);
    meas_direct.x.push_back(double(fields * sizeof(float)));
    meas_direct.y.push_back(g_direct);
  }
  std::printf("\n%s",
              util::line_chart({meas_tile, meas_staged, meas_direct},
                               "[Fig 8, measured] register-tile / staged / "
                               "strided SoA->AoS copy on this CPU",
                               "struct bytes", "GB/s")
                  .c_str());

  if (cfg.csv_path) {
    util::csv_writer csv(*cfg.csv_path);
    csv.row("struct_bytes", "model_c2r_gbs", "model_vector_gbs",
            "model_direct_gbs");
    for (std::size_t k = 0; k < sizes.size(); ++k) {
      csv.row(sizes[k], c2r[k].gbs, vec[k].gbs, direct[k].gbs);
    }
  }

  auto model_gbs = [](const std::vector<memsim::bandwidth_point>& pts) {
    std::vector<double> out;
    out.reserve(pts.size());
    for (const auto& p : pts) {
      out.push_back(p.gbs);
    }
    return out;
  };
  rep.add_series("model_c2r_gbs", "GB/s", model_gbs(c2r));
  rep.add_series("model_vector_gbs", "GB/s", model_gbs(vec));
  rep.add_series("model_direct_gbs", "GB/s", model_gbs(direct));
  rep.add_series("measured_regtile_gbs", "GB/s", meas_tile.y);
  rep.add_series("measured_staged_gbs", "GB/s", meas_staged.y);
  rep.add_series("measured_strided_gbs", "GB/s", meas_direct.y);
  rep.attach_telemetry(coll, INPLACE_TELEMETRY_ENABLED != 0);
  rep.write();
  return 0;
}
