// Ablation for the execution context (core/context.hpp): what plan and
// arena reuse buys over the one-shot path.  A cold call pays planning,
// Barrett reciprocal setup, workspace allocation (threads x O(max(m, n))
// elements, Theorem 6) and permutation cycle discovery on top of the
// actual data movement; a warm call through a transpose_context skips all
// of it and replays the memoized cycle leaders.
//
// Besides the timing table, the binary self-gates deterministically: the
// context's own counters must show the timed warm loop ran with zero
// plan misses and zero arena allocations (the steady state the tentpole
// promises), independent of timer noise.  A violation exits nonzero.

#include <cstdio>
#include <utility>
#include <vector>

#include "core/context.hpp"
#include "util/bench_harness.hpp"
#include "util/matrix.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace {

using namespace inplace;

struct shape_result {
  double cold_us = 0.0;
  double warm_us = 0.0;
};

/// Median microseconds for one transpose, cold (fresh context per rep —
/// every call plans, allocates and discovers cycles) vs warm (one shared
/// context, primed before timing).
shape_result run_shape(std::uint64_t m, std::uint64_t n, int reps,
                       bool& steady_state_ok) {
  shape_result res;
  std::vector<double> buf(m * n);
  std::vector<double> us;
  us.reserve(static_cast<std::size_t>(reps));

  for (int r = 0; r < reps; ++r) {
    transpose_context cold_ctx;
    util::fill_iota(std::span<double>(buf));
    util::timer clk;
    cold_ctx.transpose(buf.data(), m, n);
    us.push_back(clk.seconds() * 1e6);
  }
  res.cold_us = util::median(us);

  transpose_context warm_ctx;
  util::fill_iota(std::span<double>(buf));
  warm_ctx.transpose(buf.data(), m, n);  // prime: plan + arena + cycles
  const context_stats primed = warm_ctx.stats();
  us.clear();
  for (int r = 0; r < reps; ++r) {
    util::fill_iota(std::span<double>(buf));
    util::timer clk;
    warm_ctx.transpose(buf.data(), m, n);
    us.push_back(clk.seconds() * 1e6);
  }
  res.warm_us = util::median(us);

  // The deterministic gate: the timed loop must have been pure reuse.
  const context_stats after = warm_ctx.stats();
  const auto reused = after.arenas_reused - primed.arenas_reused;
  if (after.plan_misses != primed.plan_misses ||
      after.arenas_created != primed.arenas_created ||
      reused != static_cast<std::uint64_t>(reps)) {
    std::fprintf(stderr,
                 "FAIL %llux%llu: warm loop was not steady-state "
                 "(misses +%llu, arenas +%llu, reused %llu/%d)\n",
                 static_cast<unsigned long long>(m),
                 static_cast<unsigned long long>(n),
                 static_cast<unsigned long long>(after.plan_misses -
                                                 primed.plan_misses),
                 static_cast<unsigned long long>(after.arenas_created -
                                                 primed.arenas_created),
                 static_cast<unsigned long long>(reused), reps);
    steady_state_ok = false;
  }
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = util::parse_bench_args(argc, argv);
  util::bench_report rep(
      "ablation_plan_cache",
      "transpose_context plan/arena reuse: warm calls skip planning, "
      "workspace allocation and cycle discovery entirely",
      cfg);
  telemetry::collector coll;
  telemetry::scoped_sink sink_guard(&coll);
  util::print_banner(
      "Ablation: execution-context plan cache",
      "warm (cached plan + arena + memoized cycles) vs cold per-call setup");

  const int reps = static_cast<int>(cfg.samples(9, 5));
  // Blocked shapes with coprime and non-coprime dims, plus a skinny shape
  // where cycle discovery dominates the setup cost.
  const std::pair<std::uint64_t, std::uint64_t> shapes[] = {
      {640, 384}, {1021, 511}, {1536, 1024}, {20000, 8}};

  bool steady_state_ok = true;
  std::printf("  %-14s %12s %12s %9s\n", "shape", "cold us", "warm us",
              "speedup");
  for (const auto& [m, n] : shapes) {
    const shape_result r = run_shape(m, n, reps, steady_state_ok);
    std::printf("  %6llux%-7llu %12.1f %12.1f %8.2fx\n",
                static_cast<unsigned long long>(m),
                static_cast<unsigned long long>(n), r.cold_us, r.warm_us,
                r.cold_us / r.warm_us);
    rep.add_sample("cold_us", "us", r.cold_us, /*higher_is_better=*/false);
    rep.add_sample("warm_us", "us", r.warm_us, /*higher_is_better=*/false);
    rep.add_sample("speedup", "x", r.cold_us / r.warm_us);
  }
  std::printf("\n(gap = planning + scratch allocation + cycle discovery; "
              "largest where setup rivals the O(mn) data movement)\n");
  rep.note("warm_loop_steady_state", steady_state_ok);

  rep.attach_telemetry(coll, INPLACE_TELEMETRY_ENABLED != 0);
  rep.write();
  if (!steady_state_ok) {
    std::fprintf(stderr,
                 "ablation_plan_cache: warm path performed steady-state "
                 "allocations — plan cache regression\n");
    return 1;
  }
  return 0;
}
