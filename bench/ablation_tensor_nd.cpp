// Ablation for the rank-N permutation planner (core/tensor_plan.hpp):
// what the cost-model search over decomposition orders buys against the
// worst admissible order on 3-D/4-D probe shapes.  Both plans execute
// through the same nd_transposer engine, so the measured gap isolates
// the decomposition choice — pass count, pass shapes, and whether a
// chunk-grid pass (strided, cache-hostile) appears where a batched 2-D
// pass would do.
//
// Besides the timing table, the binary self-gates deterministically:
//
//   * bit-exactness: both the searched and the worst-order plan must
//     reproduce the out-of-place reference on every probe;
//   * model ordering: the searched plan's memsim score must not exceed
//     the worst order's (a search regression, independent of timers);
//   * warm steady state: a timed permute_nd loop through a shared
//     transpose_context must show zero plan misses and zero arena
//     allocations after priming (the perm-extended context key works).
//
// The timing gate (searched >= worst is a regression) arms itself only
// at full scale — quick --scale runs are setup-dominated and self-skip.

#include <cstdio>
#include <string>
#include <vector>

#include "core/context.hpp"
#include "core/tensor.hpp"
#include "util/bench_harness.hpp"
#include "util/matrix.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace {

using namespace inplace;

struct probe {
  const char* name;
  std::vector<std::size_t> dims;
  std::vector<int> perm;
};

/// Out-of-place reference permutation (row-major both sides).
std::vector<float> reference_permute(const std::vector<float>& in,
                                     const std::vector<std::size_t>& dims,
                                     const std::vector<int>& perm) {
  const std::size_t rank = dims.size();
  std::vector<std::size_t> out_dims(rank);
  for (std::size_t k = 0; k < rank; ++k) {
    out_dims[k] = dims[static_cast<std::size_t>(perm[k])];
  }
  std::vector<std::size_t> out_strides(rank, 1);
  for (std::size_t k = rank; k-- > 1;) {
    out_strides[k - 1] = out_strides[k] * out_dims[k];
  }
  std::vector<float> out(in.size());
  std::vector<std::size_t> idx(rank, 0);
  for (std::size_t lin = 0; lin < in.size(); ++lin) {
    std::size_t olin = 0;
    for (std::size_t k = 0; k < rank; ++k) {
      olin += idx[static_cast<std::size_t>(perm[k])] * out_strides[k];
    }
    out[olin] = in[lin];
    for (std::size_t k = rank; k-- > 0;) {
      if (++idx[k] < dims[k]) {
        break;
      }
      idx[k] = 0;
    }
  }
  return out;
}

/// One timed execution of `tr` on a fresh iota buffer; optionally checks
/// the result bit-exactly against `want`.
double time_once(nd_transposer<float>& tr, std::vector<float>& buf,
                 const std::vector<float>* want, bool& exact_ok,
                 const char* what) {
  util::fill_iota(std::span<float>(buf));
  util::timer clk;
  tr(buf.data());
  const double us = clk.seconds() * 1e6;
  if (want != nullptr && buf != *want) {
    std::fprintf(stderr, "FAIL %s: output differs from the reference\n",
                 what);
    exact_ok = false;
  }
  return us;
}

/// Per-rep microseconds for the searched and worst-order plans, reps
/// interleaved pairwise (searched, worst, searched, worst, ...) after an
/// untimed warmup pair so each rep pair shares the same cache/TLB/clock
/// state — the per-pair gap survives run-to-run machine drift that
/// back-to-back blocks would fold into it.  Every rep is reported to the
/// harness so bench_gate sees the real spread, not a scalar.
void time_plans(const detail::tensor_plan& best,
                const detail::tensor_plan& worst, std::size_t total,
                const std::vector<float>& want, int reps, bool& exact_ok,
                const char* what, std::vector<double>& best_us,
                std::vector<double>& worst_us) {
  nd_transposer<float> tr_best(best);
  nd_transposer<float> tr_worst(worst);
  std::vector<float> buf(total);
  time_once(tr_best, buf, &want, exact_ok, what);   // warmup + exactness
  time_once(tr_worst, buf, &want, exact_ok, what);
  best_us.reserve(static_cast<std::size_t>(reps));
  worst_us.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    best_us.push_back(time_once(tr_best, buf, nullptr, exact_ok, what));
    worst_us.push_back(time_once(tr_worst, buf, nullptr, exact_ok, what));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = util::parse_bench_args(argc, argv);
  util::bench_report rep(
      "ablation_tensor_nd",
      "rank-N decomposition-order search (memsim-scored) vs the worst "
      "admissible order, same execution engine",
      cfg);
  telemetry::collector coll;
  telemetry::scoped_sink sink_guard(&coll);
  util::print_banner(
      "Ablation: tensor decomposition-order search",
      "searched pass sequence vs worst-order foil on 3-D/4-D probes");

  const int reps = static_cast<int>(cfg.samples(7, 3));
  const probe probes[] = {
      {"rev3", {128, 96, 64}, {2, 1, 0}},
      {"rev4", {40, 32, 24, 20}, {3, 2, 1, 0}},
      {"nchw_nhwc", {8, 48, 56, 40}, {0, 2, 3, 1}},
  };
  // Quick --scale runs are setup-dominated: the timing gate arms only at
  // (near-)full scale, the deterministic gates always run.
  const bool timing_armed = cfg.scale >= 0.99;

  bool exact_ok = true;
  bool model_ok = true;
  bool timing_ok = true;
  std::printf("  %-11s %6s %6s %12s %12s %9s\n", "probe", "passes",
              "worstp", "searched us", "worst us", "gap");
  for (const auto& p : probes) {
    const auto best = detail::make_tensor_plan(
        std::span<const std::size_t>(p.dims), std::span<const int>(p.perm),
        sizeof(float), detail::tensor_goal::best);
    const auto worst = detail::make_tensor_plan(
        std::span<const std::size_t>(p.dims), std::span<const int>(p.perm),
        sizeof(float), detail::tensor_goal::worst);
    if (best.model_seconds > worst.model_seconds) {
      std::fprintf(stderr,
                   "FAIL %s: searched plan scores worse than the worst "
                   "order (%.3g > %.3g model seconds)\n",
                   p.name, best.model_seconds, worst.model_seconds);
      model_ok = false;
    }
    std::size_t total = 1;
    for (const std::size_t d : p.dims) {
      total *= d;
    }
    std::vector<float> src(total);
    util::fill_iota(std::span<float>(src));
    const auto want = reference_permute(src, p.dims, p.perm);
    std::vector<double> best_reps;
    std::vector<double> worst_reps;
    time_plans(best, worst, total, want, reps, exact_ok, p.name, best_reps,
               worst_reps);
    const double best_us = util::median(best_reps);
    const double worst_us = util::median(worst_reps);
    const double gap = worst_us / best_us;
    if (timing_armed && gap < 1.0) {
      // The searched order lost to the foil on the wall clock — allowed
      // for plans the model scores within noise of each other only when
      // the pass sequences are literally identical.
      if (best.passes.size() != worst.passes.size() ||
          best.model_seconds < worst.model_seconds) {
        std::fprintf(stderr,
                     "FAIL %s: searched order ran slower than the worst "
                     "order (%.1f us vs %.1f us)\n",
                     p.name, best_us, worst_us);
        timing_ok = false;
      }
    }
    std::printf("  %-11s %6zu %6zu %12.1f %12.1f %8.2fx\n", p.name,
                best.passes.size(), worst.passes.size(), best_us, worst_us,
                gap);
    const std::string tag(p.name);
    for (int r = 0; r < reps; ++r) {
      const auto i = static_cast<std::size_t>(r);
      rep.add_sample(tag + "_searched_us", "us", best_reps[i],
                     /*higher_is_better=*/false);
      rep.add_sample(tag + "_worst_us", "us", worst_reps[i],
                     /*higher_is_better=*/false);
      // Paired per-rep gaps give bench_gate the ratio's own spread.
      rep.add_sample(tag + "_gap", "x", worst_reps[i] / best_reps[i]);
    }
  }

  // Warm steady state through the context: after priming, a timed loop
  // must be pure reuse under the perm-extended cache key.
  bool steady_state_ok = true;
  {
    transpose_context ctx;
    const probe& p = probes[2];  // the NCHW->NHWC conversion
    std::size_t total = 1;
    for (const std::size_t d : p.dims) {
      total *= d;
    }
    std::vector<float> buf(total);
    util::fill_iota(std::span<float>(buf));
    ctx.permute_nd(buf.data(), std::span<const std::size_t>(p.dims),
                   std::span<const int>(p.perm));
    const context_stats primed = ctx.stats();
    std::vector<double> us;
    us.reserve(static_cast<std::size_t>(reps));
    for (int r = 0; r < reps; ++r) {
      util::fill_iota(std::span<float>(buf));
      util::timer clk;
      ctx.permute_nd(buf.data(), std::span<const std::size_t>(p.dims),
                     std::span<const int>(p.perm));
      us.push_back(clk.seconds() * 1e6);
    }
    const context_stats after = ctx.stats();
    const auto reused = after.arenas_reused - primed.arenas_reused;
    if (after.plan_misses != primed.plan_misses ||
        after.arenas_created != primed.arenas_created ||
        reused != static_cast<std::uint64_t>(reps)) {
      std::fprintf(stderr,
                   "FAIL warm loop not steady-state (misses +%llu, arenas "
                   "+%llu, reused %llu/%d)\n",
                   static_cast<unsigned long long>(after.plan_misses -
                                                   primed.plan_misses),
                   static_cast<unsigned long long>(after.arenas_created -
                                                   primed.arenas_created),
                   static_cast<unsigned long long>(reused), reps);
      steady_state_ok = false;
    }
    std::printf("\n  warm permute_nd (%s): %.1f us/call, steady state %s\n",
                p.name, util::median(us), steady_state_ok ? "ok" : "FAIL");
    for (const double v : us) {
      rep.add_sample("warm_permute_nd_us", "us", v,
                     /*higher_is_better=*/false);
    }
  }

  std::printf("(gap = worst-order decomposition time / searched time; the "
              "search also prunes pass counts)\n");
  rep.note("bit_exact", exact_ok);
  rep.note("model_ordering_ok", model_ok);
  rep.note("warm_loop_steady_state", steady_state_ok);
  rep.note("timing_gate_armed", timing_armed);

  rep.attach_telemetry(coll, INPLACE_TELEMETRY_ENABLED != 0);
  rep.write();
  if (!exact_ok || !model_ok || !steady_state_ok || !timing_ok) {
    std::fprintf(stderr,
                 "ablation_tensor_nd: deterministic gate failure (exact=%d "
                 "model=%d steady=%d timing=%d)\n",
                 exact_ok ? 1 : 0, model_ok ? 1 : 0, steady_state_ok ? 1 : 0,
                 timing_ok ? 1 : 0);
    return 1;
  }
  return 0;
}
