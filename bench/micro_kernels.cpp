// Google-benchmark microbenchmarks for the primitives the engines are
// built from: strength-reduced division (Section 4.4), the rotation
// variants (Section 4.6), row-shuffle forms (Sections 4.2-4.3), the
// cycle-following row permutation (Section 4.7), and the in-register warp
// transpose (Section 6.2).

#include <benchmark/benchmark.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "core/equations.hpp"
#include "core/executor.hpp"
#include "core/fastdiv64.hpp"
#include "core/transpose.hpp"
#include "core/permute.hpp"
#include "core/rotate.hpp"
#include "cpu/kernels/kernel_set.hpp"
#include "cpu/kernels/tile_inreg.hpp"
#include "simd/register_transpose.hpp"
#include "simd/vectorized.hpp"
#include "util/bench_harness.hpp"
#include "util/matrix.hpp"

namespace {

using namespace inplace;

// --- Section 4.4: division strength reduction ------------------------------

void BM_HardwareDivMod(benchmark::State& state) {
  const std::uint64_t d = static_cast<std::uint64_t>(state.range(0));
  std::uint64_t acc = 0;
  std::uint64_t x = 123456789;
  for (auto _ : state) {
    for (int k = 0; k < 64; ++k) {
      acc += x / d + x % d;
      x = x * 2862933555777941757ull + 3037000493ull;
      x &= 0xffffffffull;
    }
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_HardwareDivMod)->Arg(7)->Arg(1000)->Arg(1048576);

void BM_FastDivMod(benchmark::State& state) {
  const fast_divmod fd(static_cast<std::uint64_t>(state.range(0)));
  std::uint64_t acc = 0;
  std::uint64_t x = 123456789;
  for (auto _ : state) {
    for (int k = 0; k < 64; ++k) {
      acc += fd.div(x) + fd.mod(x);
      x = x * 2862933555777941757ull + 3037000493ull;
      x &= 0xffffffffull;
    }
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_FastDivMod)->Arg(7)->Arg(1000)->Arg(1048576);

void BM_BarrettDivMod(benchmark::State& state) {
  const barrett_divmod bd(static_cast<std::uint64_t>(state.range(0)));
  std::uint64_t acc = 0;
  std::uint64_t x = 0x123456789abcdefull;
  for (auto _ : state) {
    for (int k = 0; k < 64; ++k) {
      const auto [q, r] = bd.divmod(x);
      acc += q + r;
      x = x * 2862933555777941757ull + 3037000493ull;
    }
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_BarrettDivMod)->Arg(7)->Arg(1000)->Arg(1048576);

// --- Section 4.6: rotation variants ----------------------------------------

constexpr std::uint64_t kRotRows = 4096;
constexpr std::uint64_t kRotCols = 512;

void BM_RotateColumnsNaive(benchmark::State& state) {
  std::vector<float> a(kRotRows * kRotCols);
  detail::workspace<float> ws;
  ws.reserve(kRotRows, kRotCols, 16);
  for (auto _ : state) {
    for (std::uint64_t j = 0; j < kRotCols; ++j) {
      detail::rotate_column_naive(a.data(), kRotRows, kRotCols, j,
                                  j % kRotRows, ws.line.data());
    }
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(state.iterations() * a.size() * sizeof(float) * 2);
}
BENCHMARK(BM_RotateColumnsNaive)->Unit(benchmark::kMillisecond);

void BM_RotateColumnsCacheAware(benchmark::State& state) {
  std::vector<float> a(kRotRows * kRotCols);
  detail::workspace<float> ws;
  ws.reserve(kRotRows, kRotCols, 16);
  for (auto _ : state) {
    detail::rotate_columns_blocked(
        a.data(), kRotRows, kRotCols, 16,
        [](std::uint64_t j) { return j; }, ws);
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(state.iterations() * a.size() * sizeof(float) * 2);
}
BENCHMARK(BM_RotateColumnsCacheAware)->Unit(benchmark::kMillisecond);

// --- Sections 4.2-4.3: row shuffle forms ------------------------------------

void BM_RowShuffleScatterDPrime(benchmark::State& state) {
  const std::uint64_t m = 512;
  const std::uint64_t n = 2048;
  const transpose_math<fast_divmod> mm(m, n);
  std::vector<float> a(m * n);
  detail::workspace<float> ws;
  ws.reserve(m, n, 16);
  for (auto _ : state) {
    for (std::uint64_t i = 0; i < m; ++i) {
      detail::row_scatter_inplace(
          a.data() + i * n, n, ws.line.data(),
          [&](std::uint64_t j) { return mm.d_prime(i, j); });
    }
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(state.iterations() * a.size() * sizeof(float) * 2);
}
BENCHMARK(BM_RowShuffleScatterDPrime)->Unit(benchmark::kMillisecond);

void BM_RowShuffleGatherDPrimeInv(benchmark::State& state) {
  const std::uint64_t m = 512;
  const std::uint64_t n = 2048;
  const transpose_math<fast_divmod> mm(m, n);
  std::vector<float> a(m * n);
  detail::workspace<float> ws;
  ws.reserve(m, n, 16);
  for (auto _ : state) {
    for (std::uint64_t i = 0; i < m; ++i) {
      detail::row_gather_inplace(
          a.data() + i * n, n, ws.line.data(),
          [&](std::uint64_t j) { return mm.d_prime_inv(i, j); });
    }
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(state.iterations() * a.size() * sizeof(float) * 2);
}
BENCHMARK(BM_RowShuffleGatherDPrimeInv)->Unit(benchmark::kMillisecond);

// --- Section 4.7: cycle-following row permutation ---------------------------

void BM_RowPermuteCycleFollowing(benchmark::State& state) {
  const std::uint64_t m = 4096;
  const std::uint64_t n = 512;
  const transpose_math<fast_divmod> mm(m, n);
  std::vector<float> a(m * n);
  detail::workspace<float> ws;
  ws.reserve(m, n, 16);
  const auto q = [&](std::uint64_t i) { return mm.q(i); };
  for (auto _ : state) {
    detail::find_cycles(m, q, ws.visited, ws.cycle_starts);
    for (std::uint64_t j0 = 0; j0 < n; j0 += 16) {
      detail::permute_rows_in_group(a.data(), n, j0, 16, q,
                                    ws.cycle_starts, ws.subrow.data());
    }
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(state.iterations() * a.size() * sizeof(float) * 2);
}
BENCHMARK(BM_RowPermuteCycleFollowing)->Unit(benchmark::kMillisecond);

// --- Incremental d' evaluator (Section 4.4 extended) -------------------------

void BM_RowShuffleIncremental(benchmark::State& state) {
  const std::uint64_t m = 512;
  const std::uint64_t n = 2048;
  const transpose_math<fast_divmod> mm(m, n);
  std::vector<float> a(m * n);
  detail::workspace<float> ws;
  ws.reserve(m, n, 16);
  for (auto _ : state) {
    for (std::uint64_t i = 0; i < m; ++i) {
      float* row = a.data() + i * n;
      float* tmp = ws.line.data();
      d_prime_stepper step(mm, i);
      for (std::uint64_t j = 0; j < n; ++j, step.advance()) {
        tmp[step.value()] = row[j];
      }
      std::copy(tmp, tmp + n, row);
    }
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(state.iterations() * a.size() * sizeof(float) * 2);
}
BENCHMARK(BM_RowShuffleIncremental)->Unit(benchmark::kMillisecond);

// --- Register-tile staged conversion (simd/vectorized.hpp) -------------------

void BM_AosToSoaScalarStaged(benchmark::State& state) {
  const std::size_t count = 1 << 18;
  const std::size_t fields = static_cast<std::size_t>(state.range(0));
  std::vector<float> aos(count * fields);
  std::vector<float> soa(count * fields);
  for (auto _ : state) {
    simd::aos_to_soa_staged(soa.data(), aos.data(), count, fields);
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(state.iterations() * aos.size() * sizeof(float) *
                          2);
}
BENCHMARK(BM_AosToSoaScalarStaged)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_AosToSoaRegisterTile(benchmark::State& state) {
  const std::size_t count = 1 << 18;
  const std::size_t fields = static_cast<std::size_t>(state.range(0));
  std::vector<float> aos(count * fields);
  std::vector<float> soa(count * fields);
  for (auto _ : state) {
    simd::aos_to_soa_vectorized(soa.data(), aos.data(), count, fields);
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(state.iterations() * aos.size() * sizeof(float) *
                          2);
}
BENCHMARK(BM_AosToSoaRegisterTile)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

// --- Plan reuse (core/executor.hpp) ------------------------------------------

void BM_TransposeOneShot(benchmark::State& state) {
  const std::uint64_t m = 96;
  const std::uint64_t n = 64;
  std::vector<float> a(m * n);
  for (auto _ : state) {
    transpose(a.data(), m, n);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * m * n);
}
BENCHMARK(BM_TransposeOneShot);

void BM_TransposePlanned(benchmark::State& state) {
  const std::uint64_t m = 96;
  const std::uint64_t n = 64;
  std::vector<float> a(m * n);
  transposer<float> tr(m, n);
  for (auto _ : state) {
    tr(a.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * m * n);
}
BENCHMARK(BM_TransposePlanned);

// --- In-register SIMD tile transpose (cpu/kernels/tile_inreg_*) --------------
//
// The real-ISA counterpart of BM_WarpRegisterTranspose below: one forward
// plus one inverse tile pass over ~1 MiB of nregs x lanes f32 blocks,
// through the native tier's vpunpck/vpermd ladder and through the portable
// scalar ladder it must match bit-for-bit.

constexpr std::size_t kTileSweepBytes = std::size_t{1} << 20;

void BM_TileInregNative(benchmark::State& state) {
  const auto& ks = kernels::set_for(kernels::native_tier());
  const std::size_t nregs = static_cast<std::size_t>(state.range(0));
  const std::size_t lanes = kernels::tile_lanes<float>(ks);
  if (lanes == 0 || nregs > kernels::tile_max_regs<float>(ks)) {
    state.SkipWithError("no in-register f32 tile on this tier");
    return;
  }
  const std::size_t block = nregs * lanes;
  const std::size_t nblocks = kTileSweepBytes / (block * sizeof(float));
  std::vector<float> a(block * nblocks);
  std::iota(a.begin(), a.end(), 0.0f);
  for (auto _ : state) {
    kernels::tile_pass<float>(ks, a.data(), nregs, nblocks, true);
    kernels::tile_pass<float>(ks, a.data(), nregs, nblocks, false);
    benchmark::ClobberMemory();
  }
  // Two passes, each reading and writing every element once.
  state.SetBytesProcessed(state.iterations() * a.size() * sizeof(float) * 4);
}
BENCHMARK(BM_TileInregNative)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);

void BM_TileInregPortable(benchmark::State& state) {
  const auto& ks = kernels::set_for(kernels::native_tier());
  const std::size_t nregs = static_cast<std::size_t>(state.range(0));
  // Same lane width as the native run so the two series are comparable;
  // fall back to 8 lanes when the host has no SIMD tile at all.
  const std::size_t lanes =
      kernels::tile_lanes<float>(ks) != 0 ? kernels::tile_lanes<float>(ks) : 8;
  const std::size_t block = nregs * lanes;
  const std::size_t nblocks = kTileSweepBytes / (block * sizeof(float));
  std::vector<float> a(block * nblocks);
  std::iota(a.begin(), a.end(), 0.0f);
  for (auto _ : state) {
    kernels::tile_pass_portable(a.data(), nregs, lanes, nblocks, true);
    kernels::tile_pass_portable(a.data(), nregs, lanes, nblocks, false);
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(state.iterations() * a.size() * sizeof(float) * 4);
}
BENCHMARK(BM_TileInregPortable)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);

// --- Section 6.2: warp register transpose -----------------------------------

void BM_WarpRegisterTranspose(benchmark::State& state) {
  const unsigned m = static_cast<unsigned>(state.range(0));
  const unsigned width = 32;
  simd::warp<std::uint32_t> w(width, m);
  const auto tile = util::iota_matrix<std::uint32_t>(m, width);
  const auto mm = simd::warp_tile_math(m, width);
  for (auto _ : state) {
    w.load_coalesced(tile.data());
    simd::c2r_registers(w, mm);
    benchmark::DoNotOptimize(w.reg(0, 0));
  }
  state.SetItemsProcessed(state.iterations() * m * width);
}
BENCHMARK(BM_WarpRegisterTranspose)->Arg(4)->Arg(7)->Arg(16)->Arg(32);

// --- custom main: console output + BENCH_micro_kernels.json -----------------

// Mirrors every per-iteration timing into the JSON report while keeping the
// standard console table.
class reporting_console final : public benchmark::ConsoleReporter {
 public:
  explicit reporting_console(util::bench_report& rep) : rep_(rep) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) {
        continue;
      }
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      rep_.add_sample(run.benchmark_name(), "s/iter",
                      run.real_accumulated_time / iters,
                      /*higher_is_better=*/false);
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  util::bench_report& rep_;
};

}  // namespace

int main(int argc, char** argv) {
  // Let google-benchmark strip its own --benchmark_* flags first, then hand
  // the remainder to the shared harness parser (--scale/--json/...).
  benchmark::Initialize(&argc, argv);
  const auto cfg = util::parse_bench_args(argc, argv);
  util::bench_report rep(
      "micro_kernels",
      "per-primitive costs behind Sections 4.2-4.7 and 6.2",
      cfg);
  telemetry::collector coll;
  telemetry::scoped_sink sink_guard(&coll);
  reporting_console reporter(rep);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  rep.attach_telemetry(coll, INPLACE_TELEMETRY_ENABLED != 0);
  rep.write();
  return 0;
}
