// Domain example: converting an interleaved RGB image (R G B R G B ...)
// to planar channels (RRR... GGG... BBB...) and back, in place — the
// "data structures dictated by interface constraints" motivation from the
// paper's introduction: image APIs hand you interleaved pixels, SIMD
// filters want planes, and copies of large frames are expensive.
//
//   $ ./examples/image_planar [width] [height]

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <vector>

#include "cpu/soa.hpp"
#include "util/parse.hpp"
#include "util/timer.hpp"

namespace {

constexpr std::size_t kChannels = 3;

/// A cheap synthetic test pattern with per-channel structure.
std::uint8_t pixel_value(std::size_t x, std::size_t y, std::size_t c) {
  return static_cast<std::uint8_t>((x * (c + 1) + y * (3 - c)) & 0xff);
}

/// Box blur over one planar channel — a typical plane-wise filter.
std::uint64_t blur_plane(const std::uint8_t* plane, std::size_t w,
                         std::size_t h) {
  std::uint64_t acc = 0;
  for (std::size_t y = 1; y + 1 < h; ++y) {
    for (std::size_t x = 1; x + 1 < w; ++x) {
      const std::size_t i = y * w + x;
      acc += (plane[i - 1] + plane[i + 1] + plane[i - w] + plane[i + w] +
              plane[i]) /
             5;
    }
  }
  return acc;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t w = inplace::util::parse_size_arg(argc, argv, 1, 1920);
  const std::size_t h = inplace::util::parse_size_arg(argc, argv, 2, 1080);
  const std::size_t pixels = w * h;
  std::printf("image: %zux%zu, %zu interleaved channels (%.1f MB)\n", w, h,
              kChannels, double(pixels * kChannels) / 1e6);

  std::vector<std::uint8_t> img(pixels * kChannels);
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      for (std::size_t c = 0; c < kChannels; ++c) {
        img[(y * w + x) * kChannels + c] = pixel_value(x, y, c);
      }
    }
  }
  const auto original = img;

  // Interleaved RGB is an Array of Structures with 3 one-byte fields;
  // planar is its Structure-of-Arrays transpose.
  inplace::util::timer clk;
  inplace::aos_to_soa(img.data(), pixels, kChannels);
  const double t_fwd = clk.seconds();

  // Verify the planar layout and run a plane-wise filter.
  bool layout_ok = true;
  for (std::size_t c = 0; c < kChannels && layout_ok; ++c) {
    for (std::size_t p = 0; p < pixels; p += pixels / 97 + 1) {
      if (img[c * pixels + p] !=
          pixel_value(p % w, p / w, c)) {
        layout_ok = false;
        break;
      }
    }
  }
  std::uint64_t blur_sum = 0;
  for (std::size_t c = 0; c < kChannels; ++c) {
    blur_sum += blur_plane(img.data() + c * pixels, w, h);
  }

  clk.reset();
  inplace::soa_to_aos(img.data(), pixels, kChannels);
  const double t_back = clk.seconds();

  const bool round_trip_ok = img == original;
  const double gbs = 2.0 * double(img.size()) / t_fwd * 1e-9;
  std::printf("interleaved -> planar in place: %7.2f ms (%.2f GB/s)\n",
              t_fwd * 1e3, gbs);
  std::printf("planar layout verified:          %s\n",
              layout_ok ? "OK" : "MISMATCH");
  std::printf("plane-wise blur checksum:        %llu\n",
              static_cast<unsigned long long>(blur_sum));
  std::printf("planar -> interleaved in place:  %7.2f ms\n", t_back * 1e3);
  std::printf("lossless round trip:             %s\n",
              round_trip_ok ? "OK" : "MISMATCH");
  return (layout_ok && round_trip_ok) ? 0 : 1;
}
