// Explorer for the paper's parallelization argument (Section 1):
// traditional cycle-following transposition is "difficult to parallelize
// due to poorly distributed cycle lengths".  This example prints the
// cycle-length distribution of the transpose permutation for a few
// shapes, and contrasts it with the decomposition's perfectly regular
// unit of work (rows and column groups).
//
//   $ ./examples/cycle_structure [m] [n]

#include <cstdio>
#include <cstdlib>

#include "baselines/cycle_follow.hpp"
#include "baselines/sung_tiled.hpp"
#include "util/parse.hpp"

namespace {

void describe(std::uint64_t m, std::uint64_t n) {
  const auto lengths =
      inplace::baselines::transpose_cycle_lengths(m, n);
  if (lengths.empty()) {
    std::printf("%llux%llu: trivial permutation\n",
                static_cast<unsigned long long>(m),
                static_cast<unsigned long long>(n));
    return;
  }
  std::uint64_t total = 0;
  for (const auto len : lengths) {
    total += len;
  }
  std::printf("%5llu x %-5llu  cycles: %6zu   shortest: %6llu   longest: "
              "%8llu   longest/mean: %6.1fx\n",
              static_cast<unsigned long long>(m),
              static_cast<unsigned long long>(n), lengths.size(),
              static_cast<unsigned long long>(lengths.front()),
              static_cast<unsigned long long>(lengths.back()),
              double(lengths.back()) * double(lengths.size()) /
                  double(total));
  // A parallel cycle follower assigns whole cycles to workers: its best
  // possible balance is bounded by the longest cycle.
  const double best_speedup = double(total) / double(lengths.back());
  std::printf("              -> cycle-parallel speedup bounded by %.1fx "
              "regardless of worker count\n",
              best_speedup);
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("Cycle structure of the transpose permutation "
              "l -> l*m mod (mn-1)\n");
  std::printf("(the decomposition replaces this with m independent rows "
              "and n/width independent column groups)\n\n");
  if (argc == 3) {
    const auto m = inplace::util::parse_u64(argv[1]);
    const auto n = inplace::util::parse_u64(argv[2]);
    if (!m || !n) {
      std::fprintf(stderr, "usage: %s [m n]  (decimal extents)\n", argv[0]);
      return 2;
    }
    describe(*m, *n);
    return 0;
  }
  for (auto [m, n] :
       {std::pair<std::uint64_t, std::uint64_t>{4, 8},
        {30, 42},
        {97, 89},
        {128, 96},
        {343, 512},
        {1000, 999},
        {720, 480}}) {
    describe(m, n);
  }

  std::printf("\nTile heuristic view (Sung-like baseline, t = 72):\n");
  for (auto [m, n] : {std::pair<std::uint64_t, std::uint64_t>{7200, 1800},
                      {7919, 7907},
                      {1024, 768},
                      {1000, 999}}) {
    const auto t = inplace::baselines::choose_tiles(m, n);
    std::printf("  %5llu x %-5llu -> tiles %llu x %llu (%s)\n",
                static_cast<unsigned long long>(m),
                static_cast<unsigned long long>(n),
                static_cast<unsigned long long>(t.tile_rows),
                static_cast<unsigned long long>(t.tile_cols),
                t.well_tiled ? "well tiled" : "degenerate");
  }
  return 0;
}
