// Command-line driver: transpose a synthetic matrix of a user-chosen
// shape with any engine/direction combination, verify the result against
// the out-of-place reference, and report throughput — the quickest way to
// evaluate the library on your own shapes.
//
//   $ ./examples/transpose_cli <m> <n> [engine] [alg] [elem] [reps]
//     engine: auto | reference | blocked | skinny        (default auto)
//     alg:    auto | c2r | r2c                            (default auto)
//     elem:   f32 | f64 | u8                              (default f64)
//     reps:   repetitions, best-of reported               (default 3)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/transpose.hpp"
#include "util/matrix.hpp"
#include "util/parse.hpp"
#include "util/timer.hpp"

namespace {

using namespace inplace;

template <typename T>
int run(std::size_t m, std::size_t n, const options& opts, int reps) {
  double best = 0.0;
  bool ok = true;
  std::vector<T> a(m * n);
  for (int r = 0; r < reps; ++r) {
    util::fill_iota(std::span<T>(a));
    const auto src = a;
    util::timer clk;
    transpose(a.data(), m, n, storage_order::row_major, opts);
    const double secs = clk.seconds();
    best = std::max(best,
                    util::transpose_throughput_gbs(m, n, sizeof(T), secs));
    const auto want =
        util::reference_transpose(std::span<const T>(src), m, n);
    ok = ok &&
         util::first_mismatch(std::span<const T>(a),
                              std::span<const T>(want)) == -1;
  }
  std::printf("%zux%zu, %zu-byte elements: %s, best %.3f GB/s over %d "
              "run(s)\n",
              m, n, sizeof(T), ok ? "verified" : "MISMATCH", best, reps);
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <m> <n> [engine] [alg] [elem] [reps]\n",
                 argv[0]);
    return 2;
  }
  const auto m_arg = util::parse_size(argv[1]);
  const auto n_arg = util::parse_size(argv[2]);
  if (!m_arg || !n_arg) {
    std::fprintf(stderr, "bad extents '%s' x '%s' (want decimal sizes)\n",
                 argv[1], argv[2]);
    return 2;
  }
  const std::size_t m = *m_arg;
  const std::size_t n = *n_arg;
  options opts;
  std::string elem = "f64";
  int reps = 3;
  if (argc > 3) {
    const std::string engine = argv[3];
    if (engine == "reference") {
      opts.engine = inplace::engine_kind::reference;
    } else if (engine == "blocked") {
      opts.engine = inplace::engine_kind::blocked;
    } else if (engine == "skinny") {
      opts.engine = inplace::engine_kind::skinny;
    } else if (engine != "auto") {
      std::fprintf(stderr, "unknown engine '%s'\n", engine.c_str());
      return 2;
    }
  }
  if (argc > 4) {
    const std::string alg = argv[4];
    if (alg == "c2r") {
      opts.alg = options::algorithm::c2r;
    } else if (alg == "r2c") {
      opts.alg = options::algorithm::r2c;
    } else if (alg != "auto") {
      std::fprintf(stderr, "unknown algorithm '%s'\n", alg.c_str());
      return 2;
    }
  }
  if (argc > 5) {
    elem = argv[5];
  }
  if (argc > 6) {
    const auto reps_arg = util::parse_int(argv[6]);
    if (!reps_arg) {
      std::fprintf(stderr, "bad rep count '%s'\n", argv[6]);
      return 2;
    }
    reps = *reps_arg < 1 ? 1 : *reps_arg;
  }
  if (elem == "f32") {
    return run<float>(m, n, opts, reps);
  }
  if (elem == "u8") {
    return run<std::uint8_t>(m, n, opts, reps);
  }
  if (elem == "f64") {
    return run<double>(m, n, opts, reps);
  }
  std::fprintf(stderr, "unknown element type '%s'\n", elem.c_str());
  return 2;
}
