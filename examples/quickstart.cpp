// Quickstart: the public API in five minutes, plus live reproductions of
// the paper's Figure 1 (C2R/R2C permutations) and Figure 2 (the three
// steps of the decomposed C2R transpose).
//
//   $ ./examples/quickstart

#include <cstdio>
#include <vector>

#include "core/tensor.hpp"
#include "core/transpose.hpp"
#include "util/matrix.hpp"
#include "util/timer.hpp"

namespace {

void print_matrix(const char* title, const std::vector<int>& buf,
                  std::size_t m, std::size_t n) {
  std::printf("%s\n", title);
  for (std::size_t i = 0; i < m; ++i) {
    std::printf("  ");
    for (std::size_t j = 0; j < n; ++j) {
      std::printf("%4d", buf[i * n + j]);
    }
    std::printf("\n");
  }
}

void figure1() {
  std::printf("=== Figure 1: C2R and R2C transpositions, m = 3, n = 8 ===\n");
  auto a = inplace::util::iota_matrix<int>(3, 8);
  print_matrix("3x8 row-major input:", a, 3, 8);

  // R2C is the left-to-right arrow of Figure 1.  As a raw permutation it
  // regroups the linearized array so that element 16 at (2,0) lands at
  // (1,5), exactly as worked in Section 2.
  auto r2c_view = a;
  inplace::r2c(r2c_view.data(), 3, 8);
  print_matrix("after R2C (viewed as 3x8):", r2c_view, 3, 8);

  // And C2R inverts it.
  inplace::c2r(r2c_view.data(), 3, 8);
  std::printf("C2R(R2C(A)) == A: %s\n\n", r2c_view == a ? "yes" : "NO");
}

void figure2() {
  std::printf("=== Figure 2: the three C2R steps on a 4x8 matrix ===\n");
  // The figure starts from the matrix A[i][j] = i + 4j.
  const std::size_t m = 4;
  const std::size_t n = 8;
  std::vector<int> a(m * n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a[i * n + j] = static_cast<int>(i + 4 * j);
    }
  }
  print_matrix("input:", a, m, n);

  const inplace::transpose_math<inplace::fast_divmod> mm(m, n);
  // Step 1 — column rotate (Eq. 23): column j rotates by floor(j/b).
  std::vector<int> s1(m * n);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < m; ++i) {
      s1[i * n + j] = a[((i + mm.prerotate_offset(j)) % m) * n + j];
    }
  }
  print_matrix("after column rotate:", s1, m, n);

  // Step 2 — row shuffle (Eq. 24): scatter within each row.
  std::vector<int> s2(m * n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      s2[i * n + mm.d_prime(i, j)] = s1[i * n + j];
    }
  }
  print_matrix("after row shuffle:", s2, m, n);

  // Step 3 — column shuffle (Eq. 26): gather within each column.
  std::vector<int> s3(m * n);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < m; ++i) {
      s3[i * n + j] = s2[mm.s_prime(i, j) * n + j];
    }
  }
  print_matrix("after column shuffle (done):", s3, m, n);

  // The same result through the public API.
  auto api = a;
  inplace::c2r(api.data(), m, n);
  std::printf("library c2r() matches the manual steps: %s\n\n",
              api == s3 ? "yes" : "NO");
}

void api_tour() {
  std::printf("=== Library tour ===\n");
  const std::size_t m = 1234;
  const std::size_t n = 789;
  auto a = inplace::util::iota_matrix<double>(m, n);
  const auto src = a;

  inplace::util::timer clk;
  inplace::transpose(a.data(), m, n);  // row-major in-place transpose
  const double secs = clk.seconds();

  const auto want = inplace::util::reference_transpose(
      std::span<const double>(src), m, n);
  std::printf("transpose %zux%zu doubles in place: %s, %.2f GB/s\n", m, n,
              a == want ? "correct" : "WRONG",
              inplace::util::transpose_throughput_gbs(m, n, sizeof(double),
                                                      secs));

  // Forcing a direction and disabling strength reduction:
  inplace::options opts;
  opts.alg = inplace::options::algorithm::r2c;
  opts.strength_reduction = false;
  inplace::transpose(a.data(), n, m, inplace::storage_order::row_major,
                     opts);
  std::printf("transpose back with forced R2C + plain division: %s\n",
              a == src ? "correct" : "WRONG");

  // Column-major arrays work through the same entry point:
  auto c = inplace::util::iota_matrix<float>(64, 48);
  inplace::transpose(c.data(), 64, 48, inplace::storage_order::col_major);
  std::printf("column-major transpose: done (see tests for verification)\n");
}

void tensor_tour() {
  std::printf("\n=== 3-D extension: axis permutation ===\n");
  // A [2][3][4] tensor; move the last axis to the front ({2,0,1}).
  const std::size_t d0 = 2;
  const std::size_t d1 = 3;
  const std::size_t d2 = 4;
  std::vector<int> t(d0 * d1 * d2);
  for (std::size_t l = 0; l < t.size(); ++l) {
    t[l] = static_cast<int>(l);
  }
  inplace::permute3(t.data(), d0, d1, d2, {2, 0, 1});
  std::printf("[2][3][4] -> {2,0,1} -> [4][2][3]; slice [0][*][*]:\n");
  print_matrix("", std::vector<int>(t.begin(), t.begin() + 6), d0, d1);
  std::printf("(every element of slice k came from input positions with "
              "i2 == k)\n");
}

}  // namespace

int main() {
  figure1();
  figure2();
  api_tour();
  tensor_tour();
  return 0;
}
