// Domain example: a transformer-style batched layout change.  Attention
// implementations repeatedly flip activation tensors between
// [tokens x heads*dim] and [heads*dim x tokens] layouts per layer; with a
// planned executor (core/executor.hpp) the plan, reciprocals and scratch
// are computed once per shape and reused across the whole batch and all
// layers — in place, so no second activation buffer is needed.  The
// closing section converts a convolution activation tensor between
// NCHW and NHWC with permute_nd through the shared context, the way a
// framework would flip layouts at a backend boundary.
//
//   $ ./examples/ml_batched [batch] [tokens] [features]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/context.hpp"
#include "core/executor.hpp"
#include "core/tensor.hpp"
#include "core/transpose.hpp"
#include "util/matrix.hpp"
#include "util/parse.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace inplace;
  const std::size_t batch = util::parse_size_arg(argc, argv, 1, 24);
  const std::size_t tokens = util::parse_size_arg(argc, argv, 2, 512);
  const std::size_t features = util::parse_size_arg(argc, argv, 3, 384);
  std::printf("batch of %zu activation matrices, %zux%zu floats each "
              "(%.1f MB total)\n",
              batch, tokens, features,
              double(batch * tokens * features * sizeof(float)) / 1e6);

  std::vector<float> acts(batch * tokens * features);
  for (std::size_t l = 0; l < acts.size(); ++l) {
    acts[l] = static_cast<float>(l % 1024) * 0.25f;
  }
  const auto src = acts;
  const std::size_t stride = tokens * features;

  // One-shot API: plans every call.
  util::timer clk;
  for (std::size_t k = 0; k < batch; ++k) {
    transpose(acts.data() + k * stride, tokens, features);
  }
  for (std::size_t k = 0; k < batch; ++k) {
    transpose(acts.data() + k * stride, features, tokens);
  }
  const double t_oneshot = clk.seconds();
  const bool ok1 = acts == src;

  // Planned executors, reused across the batch and both directions.
  transposer<float> fwd(tokens, features);
  transposer<float> bwd(features, tokens);
  clk.reset();
  for (std::size_t k = 0; k < batch; ++k) {
    fwd(acts.data() + k * stride);
  }
  for (std::size_t k = 0; k < batch; ++k) {
    bwd(acts.data() + k * stride);
  }
  const double t_planned = clk.seconds();
  const bool ok2 = acts == src;

  // Convenience wrapper.
  clk.reset();
  transpose_batched(acts.data(), batch, tokens, features);
  transpose_batched(acts.data(), batch, features, tokens);
  const double t_batched = clk.seconds();
  const bool ok3 = acts == src;

  const double bytes =
      4.0 * double(batch) * double(stride) * sizeof(float);  // 2 dirs x 2
  std::printf("one-shot transpose()    : %7.1f ms (%.2f GB/s) %s\n",
              t_oneshot * 1e3, bytes / t_oneshot * 1e-9,
              ok1 ? "OK" : "MISMATCH");
  std::printf("planned transposer<>    : %7.1f ms (%.2f GB/s) %s\n",
              t_planned * 1e3, bytes / t_planned * 1e-9,
              ok2 ? "OK" : "MISMATCH");
  std::printf("transpose_batched()     : %7.1f ms (%.2f GB/s) %s\n",
              t_batched * 1e3, bytes / t_batched * 1e-9,
              ok3 ? "OK" : "MISMATCH");
  std::printf("plan-reuse saving vs one-shot: %.1f%%\n",
              100.0 * (t_oneshot - t_planned) / t_oneshot);

  // NCHW <-> NHWC: the rank-4 layout flip convolution backends trade in.
  // permute_nd searches for a pass decomposition at first sight of the
  // (shape, perm) pair and replays the cached plan on every later call —
  // including the inverse direction, which is its own cache entry.
  const std::size_t n = batch;
  const std::size_t c = 64;
  const std::size_t h = 28;
  const std::size_t w = 28;
  std::vector<float> img(n * c * h * w);
  for (std::size_t l = 0; l < img.size(); ++l) {
    img[l] = static_cast<float>(l % 509);
  }
  const auto img_src = img;
  const std::size_t nchw[] = {n, c, h, w};
  const std::size_t nhwc[] = {n, h, w, c};
  const int to_nhwc[] = {0, 2, 3, 1};
  const int to_nchw[] = {0, 3, 1, 2};
  auto& ctx = default_context();
  ctx.permute_nd<float>(img.data(), nchw, to_nhwc);  // cold: plans
  ctx.permute_nd<float>(img.data(), nhwc, to_nchw);
  clk.reset();
  ctx.permute_nd<float>(img.data(), nchw, to_nhwc);  // warm: replays
  ctx.permute_nd<float>(img.data(), nhwc, to_nchw);
  const double t_nd = clk.seconds();
  const bool ok4 = img == img_src;
  const double nd_bytes = 4.0 * double(img.size()) * sizeof(float);
  std::printf("NCHW<->NHWC permute_nd  : %7.1f ms (%.2f GB/s) %s "
              "[%zux%zux%zux%zu, warm round trip]\n",
              t_nd * 1e3, nd_bytes / t_nd * 1e-9, ok4 ? "OK" : "MISMATCH",
              n, c, h, w);
  return (ok1 && ok2 && ok3 && ok4) ? 0 : 1;
}
