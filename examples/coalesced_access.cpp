// Domain example: Figure 10's coalesced_ptr<T> on the simulated warp.
// Every batch dereference runs the in-register transpose of Section 6.2,
// so Array-of-Structures traffic is issued as fully coalesced warp
// accesses; the example prints the instruction budget the transpose costs
// and the memory-transaction savings the coalescing model predicts.
//
//   $ ./examples/coalesced_access

#include <cstdint>
#include <cstdio>
#include <vector>

#include "memsim/bandwidth_model.hpp"
#include "simd/coalesced.hpp"

namespace {

// The kind of record a CUDA kernel would load per thread (28 bytes = 7
// 32-bit words, deliberately not a power of two).
struct ray {
  float ox, oy, oz;  // origin
  float dx, dy, dz;  // direction
  std::uint32_t id;
};

}  // namespace

int main() {
  constexpr unsigned kWidth = 32;
  constexpr std::size_t kRays = 4096;
  std::vector<ray> rays(kRays);
  for (std::size_t k = 0; k < kRays; ++k) {
    rays[k] = {float(k), float(k) * 2, float(k) * 3,
               0.0f,     1.0f,         0.0f,        std::uint32_t(k)};
  }

  std::printf("=== coalesced_ptr<ray> (%zu-byte structs, warp width %u) ===\n",
              sizeof(ray), kWidth);
  inplace::simd::coalesced_ptr<ray> cp(rays.data(), kWidth);

  // A pass over the array, warp batch by warp batch: normalize directions
  // and write back — Figure 10's load + modify + store.
  std::vector<ray> batch(kWidth);
  for (std::size_t first = 0; first < kRays; first += kWidth) {
    cp.load_batch(first, batch);
    for (auto& r : batch) {
      r.dy *= 0.5f;
    }
    cp.store_batch(first, batch);
  }
  bool ok = true;
  for (std::size_t k = 0; k < kRays; ++k) {
    ok &= rays[k].dy == 0.5f && rays[k].id == k;
  }
  std::printf("batch load/modify/store over %zu rays: %s\n", kRays,
              ok ? "OK" : "MISMATCH");

  const auto& c = cp.counters();
  const std::size_t batches = kRays / kWidth;
  std::printf("per warp batch: %.1f shfl, %.1f selects, %.1f memory ops\n",
              double(c.shuffles) / double(2 * batches),
              double(c.selects) / double(2 * batches),
              double(c.memory_ops) / double(2 * batches));
  std::printf("(Section 6.2.2 bound: selects <= m*ceil(log2 m) = %u*%u)\n\n",
              7u, 3u);

  // What the memory system sees, per the Figure 8 coalescing model:
  inplace::memsim::pattern_params p;
  p.struct_bytes = sizeof(ray);
  p.elem_bytes = 4;
  p.num_structs = kRays;
  const auto direct = inplace::memsim::unit_stride_direct(p);
  const auto c2r = inplace::memsim::unit_stride_c2r(p);
  std::printf("memory transactions to read all rays once:\n");
  std::printf("  compiler-generated (strided): %8llu transactions, "
              "%.0f%% bus efficiency -> %.0f GB/s predicted\n",
              static_cast<unsigned long long>(direct.transactions),
              100 * direct.efficiency(),
              direct.predicted_gbs(p.mem.peak_gbs));
  std::printf("  via in-register transpose:    %8llu transactions, "
              "%.0f%% bus efficiency -> %.0f GB/s predicted\n",
              static_cast<unsigned long long>(c2r.transactions),
              100 * c2r.efficiency(), c2r.predicted_gbs(p.mem.peak_gbs));
  std::printf("  transaction reduction: %.1fx\n",
              double(direct.transactions) / double(c2r.transactions));
  return ok ? 0 : 1;
}
