// Domain example: an N-body-style particle system stored as an Array of
// Structures (convenient for the programmer) that is converted to a
// Structure of Arrays in place for a vectorizable update kernel, then
// converted back — the Section 6.1 workflow, with the layout-conversion
// cost and kernel speedup measured.
//
//   $ ./examples/particle_aos_soa [num_particles]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "cpu/soa.hpp"
#include "util/parse.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

// Eight 32-bit fields per particle, as AoS: x y z mass vx vy vz charge.
constexpr std::size_t kFields = 8;

enum field : std::size_t { X, Y, Z, MASS, VX, VY, VZ, CHARGE };

/// One leapfrog-ish update over the AoS layout: strided field accesses.
double step_aos(std::vector<float>& p, std::size_t count, float dt) {
  double checksum = 0.0;
  for (std::size_t s = 0; s < count; ++s) {
    float* q = p.data() + s * kFields;
    q[X] += q[VX] * dt;
    q[Y] += q[VY] * dt;
    q[Z] += q[VZ] * dt;
    checksum += q[X];
  }
  return checksum;
}

/// The same update over the SoA layout: contiguous, auto-vectorizable.
double step_soa(std::vector<float>& p, std::size_t count, float dt) {
  float* x = p.data() + X * count;
  float* y = p.data() + Y * count;
  float* z = p.data() + Z * count;
  const float* vx = p.data() + VX * count;
  const float* vy = p.data() + VY * count;
  const float* vz = p.data() + VZ * count;
  double checksum = 0.0;
  for (std::size_t s = 0; s < count; ++s) {
    x[s] += vx[s] * dt;
    y[s] += vy[s] * dt;
    z[s] += vz[s] * dt;
    checksum += x[s];
  }
  return checksum;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t count =
      inplace::util::parse_size_arg(argc, argv, 1, 2'000'000);
  std::printf("particles: %zu (%zu fields each, %.1f MB)\n", count, kFields,
              double(count * kFields * sizeof(float)) / 1e6);

  std::vector<float> particles(count * kFields);
  inplace::util::xoshiro256 rng(42);
  for (auto& v : particles) {
    v = static_cast<float>(rng.uniform_double());
  }
  auto reference = particles;

  constexpr int kSteps = 5;
  inplace::util::timer clk;
  double sum_aos = 0.0;
  for (int s = 0; s < kSteps; ++s) {
    sum_aos = step_aos(particles, count, 1e-3f);
  }
  const double t_aos = clk.seconds() / kSteps;

  // Convert to SoA in place (a count x kFields transpose, routed to the
  // skinny engine), run the same physics, convert back.
  clk.reset();
  inplace::aos_to_soa(particles.data(), count, kFields);
  const double t_convert = clk.seconds();

  clk.reset();
  double sum_soa = 0.0;
  for (int s = 0; s < kSteps; ++s) {
    sum_soa = step_soa(particles, count, 1e-3f);
  }
  const double t_soa = clk.seconds() / kSteps;

  clk.reset();
  inplace::soa_to_aos(particles.data(), count, kFields);
  const double t_back = clk.seconds();

  // Validate: the same physics applied in both layouts must agree.
  for (int s = 0; s < 2 * kSteps; ++s) {
    step_aos(reference, count, 1e-3f);
  }
  const bool ok = particles == reference;

  const double conv_gbs = 2.0 * double(count * kFields * sizeof(float)) /
                          t_convert * 1e-9;
  std::printf("AoS kernel step:       %8.3f ms (checksum %.3f)\n",
              t_aos * 1e3, sum_aos);
  std::printf("SoA kernel step:       %8.3f ms (checksum %.3f)  %.2fx\n",
              t_soa * 1e3, sum_soa, t_aos / t_soa);
  std::printf("AoS->SoA in place:     %8.3f ms (%.2f GB/s)\n",
              t_convert * 1e3, conv_gbs);
  std::printf("SoA->AoS in place:     %8.3f ms\n", t_back * 1e3);
  std::printf("round trip + physics parity: %s\n", ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}
