#!/usr/bin/env bash
# Sanitizer build matrix: configures, builds and runs the ctest suite under
# ASan, UBSan and TSan (tools/permcheck's quick sweep rides along via its
# ctest registration).  Each sanitizer gets its own build tree so the
# matrix is incremental across runs.
#
#   tools/run_sanitizers.sh                # asan + ubsan (full), tsan (mt)
#   tools/run_sanitizers.sh --only asan    # one sanitizer
#   tools/run_sanitizers.sh --only tsa     # clang Thread Safety Analysis
#                                          # compile-time proof (build only)
#   tools/run_sanitizers.sh --jobs 8       # parallel build/test width
#
# TSan note: libgomp is not TSan-instrumented, so the thread-sanitized run
# is restricted to the multi-threaded integration/engine tests and runs
# with tools/tsan.supp suppressing the runtime's internals.  A clean signal
# on the OpenMP engines still requires those tests to pass.

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 2)"
only=""

while [[ $# -gt 0 ]]; do
  case "$1" in
    --only) only="$2"; shift 2 ;;
    --jobs) jobs="$2"; shift 2 ;;
    *) echo "usage: $0 [--only asan|ubsan|tsan|tsa] [--jobs N]" >&2; exit 2 ;;
  esac
done

run_matrix_entry() {
  local name="$1" sanitize="$2" test_filter="$3"
  local build_dir="$repo_root/build-$name"

  echo "=== [$name] configure + build (INPLACE_SANITIZE=$sanitize)"
  cmake -B "$build_dir" -S "$repo_root" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DINPLACE_SANITIZE="$sanitize" \
        -DINPLACE_BUILD_BENCH=OFF \
        -DINPLACE_BUILD_EXAMPLES=OFF > "$build_dir.configure.log" 2>&1 \
    || { cat "$build_dir.configure.log" >&2; return 1; }
  cmake --build "$build_dir" -j "$jobs" > "$build_dir.build.log" 2>&1 \
    || { tail -50 "$build_dir.build.log" >&2; return 1; }

  echo "=== [$name] ctest ${test_filter:+(filter: $test_filter)}"
  local -a filter_args=()
  [[ -n "$test_filter" ]] && filter_args=(-R "$test_filter")
  (cd "$build_dir" && ctest --output-on-failure -j "$jobs" "${filter_args[@]}") \
    || return 1

  # Second pass with kernel dispatch pinned to the scalar tier: the engine
  # suites must be clean no matter which tier the dispatcher picks.  The
  # Kernel* suites stay in the default pass only — they assert on tier
  # forcing themselves and would fight the override.
  echo "=== [$name] ctest engines, INPLACE_FORCE_KERNEL_TIER=scalar"
  (cd "$build_dir" && INPLACE_FORCE_KERNEL_TIER=scalar \
     ctest --output-on-failure -j "$jobs" \
           -R 'Transpose|Skinny|Integration|Executor|Primitives|PermuteNd|Tensor')

  # Mirror pass with the in-register tile tier forced: every eligible
  # skinny plan routes through the vpunpck/vpermd ladders and their fused
  # scatter/gather hooks, so the sanitizers sweep the tile runner's
  # lane_chunk reinterpretation, rollback path and NT-store fencing too.
  echo "=== [$name] ctest engines, INPLACE_FORCE_KERNEL_TIER=inreg"
  (cd "$build_dir" && INPLACE_FORCE_KERNEL_TIER=inreg \
     ctest --output-on-failure -j "$jobs" \
           -R 'Transpose|Skinny|Integration|Executor|Primitives|PermuteNd|Tensor')

  # Third pass — failure semantics under injection: the whole process runs
  # with the OOM ladder env-forced off its first rung while the suite's own
  # stage faults fire on top.  Under the sanitizers this proves a failing
  # (rolled-back or degraded) execution leaks nothing and scribbles
  # nowhere.  Only the rollback/ladder suites run here: the Failpoint
  # registry tests assert a pristine arming state and would fight the env.
  echo "=== [$name] ctest failure semantics, INPLACE_FAILPOINTS=exec.alloc.full:oom"
  (cd "$build_dir" && INPLACE_FAILPOINTS="exec.alloc.full:oom" \
     ctest --output-on-failure -j "$jobs" -R 'Rollback|OomLadder|TensorFailure')
}

# Compile-time companion to the TSan runtime entry: a clang build with
# -Wthread-safety promoted to errors, proving the locking protocol encoded
# by the capability annotations in src/util/annotated_mutex.hpp.  This is
# a build-only pass (the proof IS the compile); the binaries are discarded.
# Not part of the default matrix — clang is optional in this project's
# toolchain, so the entry skips loudly when it is absent.
run_tsa_entry() {
  local build_dir="$repo_root/build-tsa"

  if ! command -v clang++ >/dev/null 2>&1; then
    echo "!!! [tsa] clang++ not found — SKIPPING the Thread Safety" >&2
    echo "!!! Analysis proof.  The INPLACE_GUARDED_BY/INPLACE_REQUIRES" >&2
    echo "!!! annotations compile to no-ops under GCC; install clang to" >&2
    echo "!!! verify lock discipline at compile time." >&2
    return 0
  fi

  echo "=== [tsa] configure + build (clang, -Wthread-safety as errors)"
  cmake -B "$build_dir" -S "$repo_root" \
        -DCMAKE_CXX_COMPILER=clang++ \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DINPLACE_THREAD_SAFETY=ON \
        -DINPLACE_BUILD_BENCH=OFF \
        -DINPLACE_BUILD_EXAMPLES=OFF > "$build_dir.configure.log" 2>&1 \
    || { cat "$build_dir.configure.log" >&2; return 1; }
  cmake --build "$build_dir" -j "$jobs" > "$build_dir.build.log" 2>&1 \
    || { tail -50 "$build_dir.build.log" >&2; return 1; }
  echo "=== [tsa] lock-discipline proof clean"
}

status=0
for entry in asan ubsan tsan tsa; do
  [[ -n "$only" && "$only" != "$entry" ]] && continue
  # TSA is opt-in (--only tsa): it proves at compile time what the TSan
  # runtime entry probes dynamically, and requires clang.
  [[ -z "$only" && "$entry" == "tsa" ]] && continue
  case "$entry" in
    asan)
      ASAN_OPTIONS="detect_leaks=1:strict_string_checks=1" \
        run_matrix_entry asan address "" || status=1
      ;;
    ubsan)
      UBSAN_OPTIONS="print_stacktrace=1" \
        run_matrix_entry ubsan undefined "" || status=1
      ;;
    tsan)
      TSAN_OPTIONS="suppressions=$repo_root/tools/tsan.supp:history_size=7" \
        run_matrix_entry tsan thread \
        'Integration|Transpose|Executor|Skinny|Threading|Context|Kernel|permcheck|Async|ArenaConsistency|Sched|soak_smoke|PermuteNd|Tensor' \
        || status=1
      ;;
    tsa)
      run_tsa_entry || status=1
      ;;
  esac
done

if [[ $status -eq 0 ]]; then
  echo "=== sanitizer matrix: all clean"
else
  echo "=== sanitizer matrix: FAILURES (see above)" >&2
fi
exit $status
