#!/usr/bin/env bash
# The single local gate: tier-1 build + ctest, then the ASan and UBSan
# suites, then the permcheck exhaustive sweep.  Run this before declaring
# any change good.
#
#   tools/verify.sh              # full gate
#   tools/verify.sh --fast       # tier-1 + permcheck only (no sanitizers)
#   tools/verify.sh --max 512    # deeper permcheck sweep (default 256)
#   tools/verify.sh --bench      # also run the perf gate against the
#                                # committed bench/baselines/ reports

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 2)"
permcheck_max=256
fast=0
bench=0

while [[ $# -gt 0 ]]; do
  case "$1" in
    --fast) fast=1; shift ;;
    --bench) bench=1; shift ;;
    --max) permcheck_max="$2"; shift 2 ;;
    --jobs) jobs="$2"; shift 2 ;;
    *) echo "usage: $0 [--fast] [--bench] [--max N] [--jobs N]" >&2
       exit 2 ;;
  esac
done

echo "=== tier-1: cmake + build + ctest"
cmake -B "$repo_root/build" -S "$repo_root"
cmake --build "$repo_root/build" -j "$jobs"
(cd "$repo_root/build" && ctest --output-on-failure -j "$jobs")

echo "=== failure semantics: rollback/OOM-ladder suites with env-armed faults"
# The whole ladder runs one rung down (every arena degrades) while the
# suite's own stage faults fire on top; the rollback and restore
# guarantees must hold under that combination too.
(cd "$repo_root/build" && INPLACE_FAILPOINTS="exec.alloc.full:oom" \
   ctest --output-on-failure -j "$jobs" -R 'Rollback|OomLadder')

if [[ $fast -eq 0 ]]; then
  "$repo_root/tools/run_sanitizers.sh" --only asan --jobs "$jobs"
  "$repo_root/tools/run_sanitizers.sh" --only ubsan --jobs "$jobs"
fi

echo "=== permcheck --max $permcheck_max"
"$repo_root/build/tools/permcheck" --max "$permcheck_max"

if [[ $bench -eq 1 ]]; then
  echo "=== bench gate: comparator selftest"
  "$repo_root/build/tools/bench_gate" --selftest
  echo "=== bench gate: quick-scale run vs committed baseline"
  bench_tmp="$(mktemp -d)"
  trap 'rm -rf "$bench_tmp"' EXIT
  "$repo_root/build/bench/gpu_model_predictions" --scale 0.05 \
      --json "$bench_tmp/BENCH_gpu_model_predictions.json" >/dev/null
  "$repo_root/build/tools/bench_gate" \
      "$repo_root/bench/baselines/BENCH_gpu_model_predictions.json" \
      "$bench_tmp/BENCH_gpu_model_predictions.json"
  echo "=== bench gate: plan-cache ablation steady-state check"
  # Self-gating: exits nonzero if the warm loop performed any plan misses
  # or arena allocations (a plan-cache regression), regardless of timing.
  "$repo_root/build/bench/ablation_plan_cache" --scale 0.05 --no-json
  echo "=== bench gate: kernel-dispatch ablation (tier bit-exactness)"
  # Quick scale keeps every shape below L3, so the timing gate self-skips;
  # the forced-scalar vs native-tier bit-exactness check runs in earnest.
  # Full-scale speedup gate: build/bench/ablation_kernels (no --scale).
  "$repo_root/build/bench/ablation_kernels" --scale 0.02 --no-json
fi

echo "=== verify.sh: all gates green"
