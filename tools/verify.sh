#!/usr/bin/env bash
# The single local gate: tier-1 build + ctest, then the ASan and UBSan
# suites, then the permcheck exhaustive sweep.  Run this before declaring
# any change good.
#
#   tools/verify.sh              # full gate
#   tools/verify.sh --fast       # tier-1 + permcheck only (no sanitizers)
#   tools/verify.sh --max 512    # deeper permcheck sweep (default 256)
#   tools/verify.sh --bench      # also run the perf gate against the
#                                # committed bench/baselines/ reports
#   tools/verify.sh --static     # static-verification gate only:
#                                # inplace-lint selftest + tree scan, the
#                                # clang TSA proof build, and clang-tidy.
#                                # Stages whose toolchain is missing
#                                # (clang, clang-tidy) skip LOUDLY and do
#                                # not fail the gate, so GCC-only
#                                # environments still pass.
#   tools/verify.sh --soak       # also replay the full 1M-request
#                                # transpose-as-a-service soak (clean pass
#                                # + a fault pass with env-armed ctx.*
#                                # failpoints), gating on p99 latency,
#                                # zero deadlocks, counter conservation
#                                # and bit-exactness (tools/soak).

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 2)"
permcheck_max=256
fast=0
bench=0
static_only=0
soak=0

while [[ $# -gt 0 ]]; do
  case "$1" in
    --fast) fast=1; shift ;;
    --bench) bench=1; shift ;;
    --static) static_only=1; shift ;;
    --soak) soak=1; shift ;;
    --max) permcheck_max="$2"; shift 2 ;;
    --jobs) jobs="$2"; shift 2 ;;
    *) echo "usage: $0 [--fast] [--bench] [--static] [--soak] [--max N] [--jobs N]" >&2
       exit 2 ;;
  esac
done

run_static_gate() {
  echo "=== static: inplace-lint selftest (seeded fixture corpus)"
  python3 "$repo_root/tools/lint/inplace-lint" --selftest --root "$repo_root"

  echo "=== static: inplace-lint over the shipped tree"
  python3 "$repo_root/tools/lint/inplace-lint" --root "$repo_root" \
      --compile-commands "$repo_root/build/compile_commands.json"

  if command -v clang++ >/dev/null 2>&1; then
    echo "=== static: clang Thread Safety Analysis proof build"
    "$repo_root/tools/run_sanitizers.sh" --only tsa --jobs "$jobs"
  else
    echo "!!! static: clang++ not found — SKIPPING the Thread Safety" >&2
    echo "!!! Analysis proof build.  The capability annotations in" >&2
    echo "!!! src/util/annotated_mutex.hpp compile to no-ops under this" >&2
    echo "!!! toolchain; install clang to verify the locking protocol." >&2
  fi

  if command -v clang-tidy >/dev/null 2>&1; then
    echo "=== static: clang-tidy over compiled sources"
    cmake -B "$repo_root/build-tidy" -S "$repo_root" \
          -DINPLACE_CLANG_TIDY=ON -DINPLACE_BUILD_BENCH=OFF \
          -DINPLACE_BUILD_EXAMPLES=OFF
    cmake --build "$repo_root/build-tidy" -j "$jobs"
  else
    echo "!!! static: clang-tidy not found — SKIPPING the tidy pass" >&2
    echo "!!! (profile: .clang-tidy; enable with -DINPLACE_CLANG_TIDY=ON)" >&2
  fi

  echo "=== static gate: done"
}

if [[ $static_only -eq 1 ]]; then
  run_static_gate
  exit 0
fi

echo "=== tier-1: cmake + build + ctest"
cmake -B "$repo_root/build" -S "$repo_root"
cmake --build "$repo_root/build" -j "$jobs"
(cd "$repo_root/build" && ctest --output-on-failure -j "$jobs")

echo "=== failure semantics: rollback/OOM-ladder suites with env-armed faults"
# The whole ladder runs one rung down (every arena degrades) while the
# suite's own stage faults fire on top; the rollback and restore
# guarantees must hold under that combination too.
(cd "$repo_root/build" && INPLACE_FAILPOINTS="exec.alloc.full:oom" \
   ctest --output-on-failure -j "$jobs" -R 'Rollback|OomLadder|TensorFailure')

if [[ $fast -eq 0 ]]; then
  "$repo_root/tools/run_sanitizers.sh" --only asan --jobs "$jobs"
  "$repo_root/tools/run_sanitizers.sh" --only ubsan --jobs "$jobs"
fi

echo "=== permcheck --max $permcheck_max"
"$repo_root/build/tools/permcheck" --max "$permcheck_max"

if [[ $bench -eq 1 ]]; then
  echo "=== bench gate: comparator selftest"
  "$repo_root/build/tools/bench_gate" --selftest
  echo "=== bench gate: quick-scale run vs committed baseline"
  bench_tmp="$(mktemp -d)"
  trap 'rm -rf "$bench_tmp"' EXIT
  "$repo_root/build/bench/gpu_model_predictions" --scale 0.05 \
      --json "$bench_tmp/BENCH_gpu_model_predictions.json" >/dev/null
  "$repo_root/build/tools/bench_gate" \
      "$repo_root/bench/baselines/BENCH_gpu_model_predictions.json" \
      "$bench_tmp/BENCH_gpu_model_predictions.json"
  echo "=== bench gate: micro-kernel primitives vs committed baseline"
  # Short repetitions give every series a real MAD (one-sample series
  # would gate on a zero noise band); the wide threshold reflects how
  # much nanosecond-scale primitive timings swing across host load —
  # this stanza catches order-of-magnitude cliffs (a ladder falling back
  # to scalar), not percent-level drift.
  "$repo_root/build/bench/micro_kernels" \
      --benchmark_min_time=0.02 --benchmark_repetitions=5 \
      --json "$bench_tmp/BENCH_micro_kernels.json" >/dev/null
  "$repo_root/build/tools/bench_gate" \
      "$repo_root/bench/baselines/BENCH_micro_kernels.json" \
      "$bench_tmp/BENCH_micro_kernels.json" --threshold 0.5 --mad-k 8
  echo "=== bench gate: plan-cache ablation steady-state check"
  # Self-gating: exits nonzero if the warm loop performed any plan misses
  # or arena allocations (a plan-cache regression), regardless of timing.
  "$repo_root/build/bench/ablation_plan_cache" --scale 0.05 --no-json
  echo "=== bench gate: kernel-dispatch ablation (tier bit-exactness)"
  # Quick scale keeps every shape below L3, so the timing gate self-skips;
  # the forced-scalar vs native-tier bit-exactness check runs in earnest.
  # Full-scale speedup gate: build/bench/ablation_kernels (no --scale).
  "$repo_root/build/bench/ablation_kernels" --scale 0.02 --no-json
  echo "=== bench gate: sharded plan cache vs committed baseline"
  # Deterministic gates (bit-exactness, conservation, stripe dispersion)
  # always run; the contention timing gate (sharded >= 1.05x single-lock
  # at 8 threads) arms itself only on hosts with >= 4 logical CPUs.  Full
  # scale (sub-second): the quick scales are spawn-cost dominated and
  # would not be comparable to the committed full-scale baseline.
  "$repo_root/build/bench/ablation_cache_sharding" \
      --json "$bench_tmp/BENCH_ablation_cache_sharding.json"
  "$repo_root/build/tools/bench_gate" \
      "$repo_root/bench/baselines/BENCH_ablation_cache_sharding.json" \
      "$bench_tmp/BENCH_ablation_cache_sharding.json"
  echo "=== bench gate: tensor decomposition search vs committed baseline"
  # Full scale: the searched-vs-worst-order timing gate arms only at
  # (near-)full scale, and quick scales would not be comparable to the
  # committed full-scale baseline.  Bit-exactness, model ordering and the
  # warm permute_nd steady-state check are deterministic and always run.
  "$repo_root/build/bench/ablation_tensor_nd" \
      --json "$bench_tmp/BENCH_ablation_tensor_nd.json"
  "$repo_root/build/tools/bench_gate" \
      "$repo_root/bench/baselines/BENCH_ablation_tensor_nd.json" \
      "$bench_tmp/BENCH_ablation_tensor_nd.json"
fi

if [[ $soak -eq 1 ]]; then
  echo "=== soak: 1M-request transpose-as-a-service replay (clean pass)"
  "$repo_root/build/tools/soak" --requests 1000000
  echo "=== soak: 100k-request fault pass (env-armed ctx.* failpoints)"
  # Sparse faults at every scheduler/cache failpoint: each injected fault
  # must settle exactly one future, leave its buffer untouched and keep
  # every conservation gate green.  --expect-failpoints asserts the arms
  # actually fired, so a renamed failpoint cannot produce a vacuous pass.
  INPLACE_FAILPOINTS="ctx.worker.job:fault:997:50,ctx.sched.pop:fault:1499:20,ctx.queue.push:fault:1999:20,ctx.shard.evict:fault:499:20" \
      "$repo_root/build/tools/soak" --requests 100000 --expect-failpoints
fi

echo "=== verify.sh: all gates green"
