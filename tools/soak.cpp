// Transpose-as-a-service soak driver: replays a heavy-tailed trace of
// mixed-shape async requests against one shared transpose_context and
// gates on service-level invariants rather than timing tables.
//
// Traffic model:
//   * shape popularity is Zipf-distributed (a few hot shapes, a long
//     tail), the regime the sharded plan cache serves;
//   * arrivals are bursty: requests are submitted in random-length
//     bursts separated by random think-time, so queue depth swings
//     instead of sitting at a fixed point;
//   * every request carries a QoS class (interactive with a deadline /
//     standard / batch) in a fixed 1:6:3 mix.
//
// Each shape owns a small pool of slot buffers with an orientation
// parity: a slot submitted as (m, n) flips to (n, m) on success, so the
// data is always mid-flight between the two orientations and never
// copied.  At the end every odd-parity slot is repaired with one more
// transpose and compared byte-for-byte against its pristine contents —
// the bit-exactness gate, valid even when failpoints were armed (a
// failed or expired job leaves its buffer untouched and its parity
// unflipped).
//
// Gates (any failure exits nonzero):
//   * p99 enqueue-to-settle latency under --p99-limit-ms;
//   * zero deadlocks: a watchdog aborts (exit 3) if no request settles
//     for --watchdog-sec;
//   * per-class counter conservation (settled == enqueued, every class)
//     and arena conservation (created + reused == executions);
//   * zero arena-accounting drift: clear() releases every retained byte;
//   * bit-exact slot contents after parity repair;
//   * clean shutdown (every future settled; destructor joins workers).
//
// Fault passes: arm the existing failpoints via the environment, e.g.
//   INPLACE_FAILPOINTS="ctx.worker.job:fault:997:1" tools/soak \
//       --requests 100000 --expect-failpoints
// --expect-failpoints asserts at least one ctx.* failpoint actually
// fired, so a misspelled arm cannot silently produce a vacuous pass.

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <future>
#include <mutex>
#include <optional>
#include <span>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "core/context.hpp"
#include "core/failpoint.hpp"
#include "util/matrix.hpp"
#include "util/parse.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace {

using namespace inplace;
using steady = std::chrono::steady_clock;

struct soak_options {
  std::uint64_t requests = 1'000'000;
  double p99_limit_ms = 2000.0;
  std::uint64_t watchdog_sec = 60;
  std::uint64_t seed = 42;
  std::uint64_t deadline_ms = 250;  ///< interactive-class deadline budget
  bool expect_failpoints = false;
};

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--requests N] [--p99-limit-ms F] [--watchdog-sec N]\n"
      "          [--seed N] [--deadline-ms N] [--expect-failpoints]\n",
      argv0);
}

/// One slot: a buffer flipping between (m, n) and (n, m) orientations.
struct slot {
  std::vector<double> buf;
  std::vector<double> pristine;
  bool flipped = false;  ///< true: currently holds the (n, m) orientation
};

struct shape {
  std::uint64_t m = 0;
  std::uint64_t n = 0;
  std::vector<slot> slots;
  std::vector<std::size_t> free_slots;  ///< indices into slots
};

/// An in-flight request handed from the producer to the reaper.
struct record {
  std::future<void> fut;
  steady::time_point enqueued;
  std::size_t shape_idx = 0;
  std::size_t slot_idx = 0;
  qos_class qos = qos_class::standard;
};

/// The mixed-shape catalogue: hot interactive-sized shapes up front
/// (Zipf gives them most of the traffic), a long tail of larger and
/// skinny shapes behind.
std::vector<shape> make_shapes(std::size_t slots_per_shape) {
  const std::pair<std::uint64_t, std::uint64_t> dims[] = {
      {24, 18},  {32, 24},  {17, 23},  {48, 32},  {16, 16},  {40, 25},
      {64, 48},  {27, 81},  {96, 32},  {56, 72},  {33, 67},  {80, 45},
      {128, 64}, {59, 61},  {112, 36}, {144, 48}, {41, 113}, {97, 89},
      {200, 8},  {8, 200},  {320, 12}, {176, 64}, {208, 80}, {256, 96}};
  std::vector<shape> shapes;
  shapes.reserve(std::size(dims));
  for (const auto& [m, n] : dims) {
    shape s;
    s.m = m;
    s.n = n;
    for (std::size_t k = 0; k < slots_per_shape; ++k) {
      slot sl;
      sl.buf = util::iota_matrix<double>(m, n);
      sl.pristine = sl.buf;
      s.slots.push_back(std::move(sl));
      s.free_slots.push_back(k);
    }
    shapes.push_back(std::move(s));
  }
  return shapes;
}

/// Zipf(s = 1.1) cumulative weights over `count` ranks.
std::vector<double> zipf_cdf(std::size_t count) {
  std::vector<double> cdf(count);
  double total = 0.0;
  for (std::size_t k = 0; k < count; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), 1.1);
    cdf[k] = total;
  }
  for (auto& c : cdf) {
    c /= total;
  }
  return cdf;
}

std::size_t sample_zipf(const std::vector<double>& cdf, double u) {
  const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
  return it == cdf.end() ? cdf.size() - 1
                         : static_cast<std::size_t>(it - cdf.begin());
}

int run_soak(const soak_options& opt) {
  // Apply any INPLACE_FAILPOINTS from the environment before the first
  // context exists.  The INPLACE_FAILPOINT() fast path never initializes
  // the registry on its own (any_armed() is a bare atomic read), so an
  // env-armed soak must parse the spec explicitly up front.
  failpoint::reload_env();

  transpose_context ctx;  // default options: the shipped configuration
  std::vector<shape> shapes = make_shapes(/*slots_per_shape=*/8);
  const auto cdf = zipf_cdf(shapes.size());
  util::xoshiro256 rng(opt.seed);

  // Producer <-> reaper plumbing.  slots_mu guards every shape's
  // free_slots and every slot's parity; queue_mu guards the record
  // queue.  The producer takes them one at a time, never nested.
  std::mutex slots_mu;
  std::condition_variable slot_freed;
  std::mutex queue_mu;
  std::condition_variable queue_nonempty;
  std::condition_variable queue_drained;
  std::deque<record> inflight;
  constexpr std::size_t kWindow = 512;
  bool producer_done = false;

  // Reaper-side tallies.  settled_total also feeds the watchdog.
  std::atomic<std::uint64_t> settled_total{0};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> expired{0};
  std::atomic<std::uint64_t> failed{0};
  std::array<std::vector<double>, qos_class_count> latencies_us;
  for (auto& v : latencies_us) {
    v.reserve(static_cast<std::size_t>(
        opt.requests / qos_class_count + 1024));
  }

  std::thread reaper([&] {
    for (;;) {
      record rec;
      {
        std::unique_lock<std::mutex> lock(queue_mu);
        queue_nonempty.wait(lock, [&] {
          return !inflight.empty() || producer_done;
        });
        if (inflight.empty()) {
          return;  // producer done and everything settled
        }
        rec = std::move(inflight.front());
        inflight.pop_front();
        queue_drained.notify_all();
      }
      bool flipped_now = false;
      try {
        rec.fut.get();
        completed.fetch_add(1, std::memory_order_relaxed);
        flipped_now = true;
      } catch (const deadline_exceeded&) {
        expired.fetch_add(1, std::memory_order_relaxed);
      } catch (...) {
        failed.fetch_add(1, std::memory_order_relaxed);
      }
      const double us =
          std::chrono::duration<double, std::micro>(steady::now() -
                                                    rec.enqueued)
              .count();
      latencies_us[qos_index(rec.qos)].push_back(us);
      settled_total.fetch_add(1, std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lock(slots_mu);
        shape& sh = shapes[rec.shape_idx];
        if (flipped_now) {
          sh.slots[rec.slot_idx].flipped =
              !sh.slots[rec.slot_idx].flipped;
        }
        sh.free_slots.push_back(rec.slot_idx);
      }
      slot_freed.notify_one();
    }
  });

  // Watchdog: the zero-deadlock gate.  Settles must keep arriving while
  // requests are outstanding; a silent queue is a hung service.
  std::atomic<bool> watchdog_stop{false};
  std::thread watchdog([&] {
    std::uint64_t last = 0;
    auto last_change = steady::now();
    while (!watchdog_stop.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
      const std::uint64_t now_settled =
          settled_total.load(std::memory_order_relaxed);
      if (now_settled != last) {
        last = now_settled;
        last_change = steady::now();
        continue;
      }
      bool idle;
      {
        std::lock_guard<std::mutex> lock(queue_mu);
        idle = inflight.empty();
      }
      if (idle) {
        last_change = steady::now();  // nothing outstanding: not a hang
        continue;
      }
      const auto stalled = std::chrono::duration_cast<std::chrono::seconds>(
                               steady::now() - last_change)
                               .count();
      if (stalled >= static_cast<long>(opt.watchdog_sec)) {
        std::fprintf(stderr,
                     "soak: DEADLOCK — no request settled for %llus with "
                     "work outstanding (settled=%llu)\n",
                     static_cast<unsigned long long>(opt.watchdog_sec),
                     static_cast<unsigned long long>(now_settled));
        std::_Exit(3);
      }
    }
  });

  // Producer: Zipf shapes, bursty arrivals, 1:6:3 QoS mix.
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;
  util::timer wall;
  std::uint64_t burst_left = 1 + rng.uniform(0, 63);
  for (std::uint64_t k = 0; k < opt.requests; ++k) {
    // Pick a shape by popularity, then any shape (from the sampled rank
    // onward) with a free slot; park when everything is in flight.
    std::size_t shape_idx = 0;
    std::size_t slot_idx = 0;
    {
      std::unique_lock<std::mutex> lock(slots_mu);
      for (;;) {
        const std::size_t start = sample_zipf(cdf, rng.uniform_double());
        bool found = false;
        for (std::size_t probe = 0; probe < shapes.size(); ++probe) {
          const std::size_t idx = (start + probe) % shapes.size();
          if (!shapes[idx].free_slots.empty()) {
            shape_idx = idx;
            slot_idx = shapes[idx].free_slots.back();
            shapes[idx].free_slots.pop_back();
            found = true;
            break;
          }
        }
        if (found) {
          break;
        }
        slot_freed.wait(lock);
      }
    }

    shape& sh = shapes[shape_idx];
    const bool flipped = [&] {
      std::lock_guard<std::mutex> lock(slots_mu);
      return sh.slots[slot_idx].flipped;
    }();
    const std::uint64_t rows = flipped ? sh.n : sh.m;
    const std::uint64_t cols = flipped ? sh.m : sh.n;

    job_options sched;
    const std::uint64_t mix = k % 10;
    if (mix == 0) {
      sched.qos = qos_class::interactive;
      sched.deadline =
          steady::now() + std::chrono::milliseconds(opt.deadline_ms);
    } else if (mix <= 6) {
      sched.qos = qos_class::standard;
    } else {
      sched.qos = qos_class::batch;
    }

    record rec;
    rec.enqueued = steady::now();
    rec.shape_idx = shape_idx;
    rec.slot_idx = slot_idx;
    rec.qos = sched.qos;
    try {
      rec.fut = ctx.submit(sh.slots[slot_idx].buf.data(), rows, cols,
                           storage_order::row_major, options{}, sched);
      ++submitted;
    } catch (...) {
      // Injected enqueue fault (or shutdown): the job never entered the
      // queue and the buffer is untouched — return the slot and move on.
      ++rejected;
      {
        std::lock_guard<std::mutex> lock(slots_mu);
        sh.free_slots.push_back(slot_idx);
      }
      slot_freed.notify_one();
      continue;
    }
    {
      std::unique_lock<std::mutex> lock(queue_mu);
      queue_drained.wait(lock, [&] { return inflight.size() < kWindow; });
      inflight.push_back(std::move(rec));
    }
    queue_nonempty.notify_one();

    if (--burst_left == 0) {
      burst_left = 1 + rng.uniform(0, 63);
      if (rng.uniform(0, 7) == 0) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(rng.uniform(50, 500)));
      }
    }
  }

  {
    std::lock_guard<std::mutex> lock(queue_mu);
    producer_done = true;
  }
  queue_nonempty.notify_all();
  reaper.join();
  watchdog_stop.store(true, std::memory_order_relaxed);
  watchdog.join();
  const double wall_s = wall.seconds();

  int rc = 0;
  const auto fail = [&rc](const char* fmt, auto... args) {
    std::fprintf(stderr, fmt, args...);
    rc = 1;
  };

  // --- Gate: every submission settled exactly once.
  const std::uint64_t settled = settled_total.load();
  if (settled != submitted) {
    fail("soak: FAIL settled %llu != submitted %llu\n",
         static_cast<unsigned long long>(settled),
         static_cast<unsigned long long>(submitted));
  }

  // --- Gate: per-class counter conservation after the drain.
  const context_stats stats = ctx.stats();
  for (std::size_t k = 0; k < qos_class_count; ++k) {
    if (stats.qos[k].settled() != stats.qos[k].enqueued) {
      fail("soak: FAIL class %s settled %llu != enqueued %llu\n",
           qos_class_name(static_cast<qos_class>(k)),
           static_cast<unsigned long long>(stats.qos[k].settled()),
           static_cast<unsigned long long>(stats.qos[k].enqueued));
    }
  }
  if (stats.async_jobs != submitted) {
    fail("soak: FAIL async_jobs %llu != submitted %llu\n",
         static_cast<unsigned long long>(stats.async_jobs),
         static_cast<unsigned long long>(submitted));
  }

  // --- Gate: arena conservation (always) and execution accounting
  // (exact only when no faults were injected: a poisoned job settles
  // without running).
  if (stats.arenas_created + stats.arenas_reused != stats.executions) {
    fail("soak: FAIL arena conservation (created %llu + reused %llu != "
         "executions %llu)\n",
         static_cast<unsigned long long>(stats.arenas_created),
         static_cast<unsigned long long>(stats.arenas_reused),
         static_cast<unsigned long long>(stats.executions));
  }
  if (!failpoint::any_armed() &&
      stats.executions != completed.load()) {
    fail("soak: FAIL executions %llu != completed %llu (no faults armed)\n",
         static_cast<unsigned long long>(stats.executions),
         static_cast<unsigned long long>(completed.load()));
  }

  // --- Gate: bit-exactness.  Repair odd-parity slots with one more
  // (synchronous) transpose, then compare against pristine.
  std::uint64_t corrupt = 0;
  for (auto& sh : shapes) {
    for (auto& sl : sh.slots) {
      if (sl.flipped) {
        ctx.transpose(sl.buf.data(), sh.n, sh.m);
        sl.flipped = false;
      }
      if (sl.buf != sl.pristine) {
        ++corrupt;
      }
    }
  }
  if (corrupt != 0) {
    fail("soak: FAIL %llu slot(s) not bit-exact after parity repair\n",
         static_cast<unsigned long long>(corrupt));
  }

  // --- Gate: zero arena-accounting drift.
  ctx.clear();
  if (ctx.cached_bytes() != 0) {
    fail("soak: FAIL %zu retained bytes after clear()\n",
         ctx.cached_bytes());
  }

  // --- Gate: p99 latency.
  std::vector<double> all_us;
  all_us.reserve(settled);
  std::printf("soak: %llu requests in %.1fs (%.0f req/s), %llu rejected\n",
              static_cast<unsigned long long>(submitted), wall_s,
              static_cast<double>(submitted) / wall_s,
              static_cast<unsigned long long>(rejected));
  std::printf("  %-12s %10s %12s %12s %12s\n", "class", "settled",
              "p50 us", "p99 us", "max us");
  for (std::size_t k = 0; k < qos_class_count; ++k) {
    const auto& v = latencies_us[k];
    all_us.insert(all_us.end(), v.begin(), v.end());
    if (v.empty()) {
      continue;
    }
    std::printf("  %-12s %10zu %12.0f %12.0f %12.0f\n",
                qos_class_name(static_cast<qos_class>(k)), v.size(),
                util::quantile(v, 0.5), util::quantile(v, 0.99),
                util::max_value(v));
  }
  std::printf("  completed %llu, deadline-expired %llu, failed %llu\n",
              static_cast<unsigned long long>(completed.load()),
              static_cast<unsigned long long>(expired.load()),
              static_cast<unsigned long long>(failed.load()));
  std::printf("  cache: hits %llu, misses %llu, evictions %llu; "
              "pool: created %llu, reused %llu\n",
              static_cast<unsigned long long>(stats.plan_hits),
              static_cast<unsigned long long>(stats.plan_misses),
              static_cast<unsigned long long>(stats.plan_evictions),
              static_cast<unsigned long long>(stats.arenas_created),
              static_cast<unsigned long long>(stats.arenas_reused));
  if (!all_us.empty()) {
    const double p99_ms = util::quantile(all_us, 0.99) / 1000.0;
    std::printf("  overall p99: %.2f ms (limit %.2f ms)\n", p99_ms,
                opt.p99_limit_ms);
    if (p99_ms > opt.p99_limit_ms) {
      fail("soak: FAIL p99 %.2f ms exceeds the %.2f ms limit\n", p99_ms,
           opt.p99_limit_ms);
    }
  }

  // --- Gate: the fault pass actually injected faults.
  if (opt.expect_failpoints) {
    const std::uint64_t fired =
        failpoint::fires("ctx.worker.job") +
        failpoint::fires("ctx.queue.push") +
        failpoint::fires("ctx.sched.pop") +
        failpoint::fires("ctx.shard.evict") + failpoint::fires("ctx.spawn");
    if (fired == 0) {
      fail("soak: FAIL --expect-failpoints but no ctx.* failpoint fired "
           "(check the INPLACE_FAILPOINTS spelling)\n");
    } else {
      std::printf("  failpoints: %llu ctx.* fire(s) observed\n",
                  static_cast<unsigned long long>(fired));
    }
  }

  // Clean shutdown: deterministic even with rc != 0 (the destructor
  // would do this too; doing it explicitly makes the gate visible).
  ctx.shutdown();
  std::printf("soak: %s\n", rc == 0 ? "all gates green" : "FAILED");
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  soak_options opt;
  for (int k = 1; k < argc; ++k) {
    const std::string_view arg = argv[k];
    const auto next_u64 = [&](std::uint64_t& out) {
      if (k + 1 >= argc) {
        return false;
      }
      const auto v = util::parse_u64(argv[++k]);
      if (!v) {
        return false;
      }
      out = *v;
      return true;
    };
    if (arg == "--requests") {
      if (!next_u64(opt.requests)) {
        usage(argv[0]);
        return 2;
      }
    } else if (arg == "--p99-limit-ms") {
      const auto v = k + 1 < argc ? util::parse_f64(argv[++k])
                                  : std::optional<double>{};
      if (!v || *v <= 0.0) {
        usage(argv[0]);
        return 2;
      }
      opt.p99_limit_ms = *v;
    } else if (arg == "--watchdog-sec") {
      if (!next_u64(opt.watchdog_sec)) {
        usage(argv[0]);
        return 2;
      }
    } else if (arg == "--seed") {
      if (!next_u64(opt.seed)) {
        usage(argv[0]);
        return 2;
      }
    } else if (arg == "--deadline-ms") {
      if (!next_u64(opt.deadline_ms)) {
        usage(argv[0]);
        return 2;
      }
    } else if (arg == "--expect-failpoints") {
      opt.expect_failpoints = true;
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  return run_soak(opt);
}
