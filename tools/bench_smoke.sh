#!/usr/bin/env bash
# Smoke the observability loop end to end: run one bench binary twice at a
# tiny scale, then gate the second run against the first.  Two runs of the
# same build must never trip the gate, so a nonzero exit here means either
# the JSON emitter or the comparator is broken (or the chosen bench is far
# noisier than its recorded MAD claims).
#
#   bench_smoke.sh <bench-binary> <bench_gate-binary> [scale]

set -euo pipefail

if [[ $# -lt 2 ]]; then
  echo "usage: $0 <bench-binary> <bench_gate-binary> [scale]" >&2
  exit 2
fi

bench="$1"
gate="$2"
scale="${3:-0.05}"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

"$bench" --scale "$scale" --json "$tmp/base.json" >/dev/null
"$bench" --scale "$scale" --json "$tmp/cand.json" >/dev/null
"$gate" "$tmp/base.json" "$tmp/cand.json"
