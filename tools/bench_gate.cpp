// Perf-regression gate over two BENCH_*.json reports.
//
//   bench_gate BASELINE.json CANDIDATE.json [--threshold F] [--mad-k F]
//              [--allow-missing]
//   bench_gate --selftest
//
// Exit status: 0 = no regression, 1 = regression (or missing series unless
// --allow-missing), 2 = usage / unreadable input / incomparable reports.
// The comparison core lives in util/bench_compare.hpp; --selftest drives it
// over synthetic reports so the gate's sensitivity is itself testable from
// ctest without timing anything.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "util/bench_compare.hpp"
#include "util/json.hpp"
#include "util/parse.hpp"

namespace {

using namespace inplace;

util::json::value load_report(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return util::json::parse(buf.str());
}

const char* status_name(util::gate_status s) {
  switch (s) {
    case util::gate_status::ok: return "ok";
    case util::gate_status::regressed: return "REGRESSED";
    case util::gate_status::missing: return "MISSING";
    case util::gate_status::skipped: return "skipped";
  }
  return "?";
}

void print_result(const util::gate_result& r, const util::gate_options& opt) {
  std::printf("bench_gate: artifact '%s', %zu series compared "
              "(threshold %.0f%%, noise band %.1f MADs)\n",
              r.artifact.c_str(), r.compared, 100.0 * opt.rel_threshold,
              opt.mad_k);
  std::printf("  %-36s %-10s %14s %14s %9s %9s\n", "series", "status",
              "base median", "cand median", "change", "allowed");
  for (const auto& f : r.findings) {
    std::printf("  %-36s %-10s %14.4g %14.4g %+8.1f%% %8.1f%%",
                f.series.c_str(), status_name(f.status), f.base_median,
                f.cand_median, 100.0 * f.rel_change, 100.0 * f.allowed_drop);
    if (!f.detail.empty()) {
      std::printf("   (%s)", f.detail.c_str());
    }
    std::printf("\n");
  }
  if (r.passed(opt)) {
    std::printf("bench_gate: PASS\n");
  } else {
    std::printf("bench_gate: FAIL (%zu regressed, %zu missing)\n",
                r.regressed, r.missing);
  }
}

// --- selftest ---------------------------------------------------------------

util::json::value make_report(
    const std::string& artifact,
    const std::vector<std::tuple<std::string, std::string, double, double>>&
        series) {
  util::json::object doc;
  doc.emplace_back("schema", util::bench_schema);
  doc.emplace_back("artifact", artifact);
  util::json::array arr;
  for (const auto& [name, direction, median, mad] : series) {
    util::json::object s;
    s.emplace_back("name", name);
    s.emplace_back("unit", "GB/s");
    s.emplace_back("direction", direction);
    s.emplace_back("count", 9.0);
    s.emplace_back("median", median);
    s.emplace_back("mad", mad);
    arr.emplace_back(std::move(s));
  }
  doc.emplace_back("series", std::move(arr));
  return doc;
}

int selftest() {
  const util::gate_options opt;  // defaults: 10% / 4 MADs
  int failures = 0;
  const auto expect = [&](bool cond, const char* what) {
    std::printf("  %-58s %s\n", what, cond ? "ok" : "FAILED");
    if (!cond) {
      ++failures;
    }
  };

  const auto base = make_report(
      "selftest", {{"tput", "higher_is_better", 100.0, 1.0},
                   {"latency", "lower_is_better", 10.0, 0.1}});

  {  // 20% throughput drop must fail
    const auto cand = make_report(
        "selftest", {{"tput", "higher_is_better", 80.0, 1.0},
                     {"latency", "lower_is_better", 10.0, 0.1}});
    const auto r = util::compare_reports(base, cand, opt);
    expect(!r.passed(opt) && r.regressed == 1, "20% drop flagged");
  }
  {  // 2% wobble must pass
    const auto cand = make_report(
        "selftest", {{"tput", "higher_is_better", 98.0, 1.0},
                     {"latency", "lower_is_better", 10.2, 0.1}});
    const auto r = util::compare_reports(base, cand, opt);
    expect(r.passed(opt) && r.regressed == 0, "2% wobble passes");
  }
  {  // a 15% drop inside a wide noise band (MAD 5 -> 20% band) must pass
    const auto noisy = make_report(
        "selftest", {{"tput", "higher_is_better", 100.0, 5.0}});
    const auto cand = make_report(
        "selftest", {{"tput", "higher_is_better", 85.0, 5.0}});
    const auto r = util::compare_reports(noisy, cand, opt);
    expect(r.passed(opt), "15% drop within 4-MAD noise band passes");
  }
  {  // lower-is-better series regresses upward
    const auto cand = make_report(
        "selftest", {{"tput", "higher_is_better", 100.0, 1.0},
                     {"latency", "lower_is_better", 13.0, 0.1}});
    const auto r = util::compare_reports(base, cand, opt);
    expect(!r.passed(opt) && r.regressed == 1,
           "lower-is-better +30% flagged");
  }
  {  // improvement in a lower-is-better series passes
    const auto cand = make_report(
        "selftest", {{"tput", "higher_is_better", 100.0, 1.0},
                     {"latency", "lower_is_better", 7.0, 0.1}});
    const auto r = util::compare_reports(base, cand, opt);
    expect(r.passed(opt), "lower-is-better improvement passes");
  }
  {  // a series vanishing from the candidate fails (unless allowed)
    const auto cand = make_report(
        "selftest", {{"tput", "higher_is_better", 100.0, 1.0}});
    const auto r = util::compare_reports(base, cand, opt);
    expect(!r.passed(opt) && r.missing == 1, "missing series flagged");
    util::gate_options lax = opt;
    lax.fail_on_missing = false;
    expect(r.passed(lax), "missing series tolerated with --allow-missing");
  }
  {  // identical reports always pass
    const auto r = util::compare_reports(base, base, opt);
    expect(r.passed(opt) && r.compared == 2, "identical reports pass");
  }
  {  // artifact mismatch is incomparable, not a silent pass
    const auto other = make_report(
        "something_else", {{"tput", "higher_is_better", 100.0, 1.0}});
    bool threw = false;
    try {
      (void)util::compare_reports(base, other, opt);
    } catch (const std::runtime_error&) {
      threw = true;
    }
    expect(threw, "artifact mismatch refuses to compare");
  }

  std::printf("bench_gate --selftest: %s\n",
              failures == 0 ? "all checks passed" : "FAILURES");
  return failures == 0 ? 0 : 1;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: bench_gate BASELINE.json CANDIDATE.json [--threshold F]\n"
      "                  [--mad-k F] [--allow-missing]\n"
      "       bench_gate --selftest\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  util::gate_options opt;
  for (int k = 1; k < argc; ++k) {
    const std::string arg = argv[k];
    if (arg == "--selftest") {
      return selftest();
    }
    if (arg == "--allow-missing") {
      opt.fail_on_missing = false;
    } else if (arg == "--threshold" && k + 1 < argc) {
      const auto v = util::parse_f64(argv[++k]);
      if (!v) {
        std::fprintf(stderr, "bench_gate: bad --threshold '%s'\n", argv[k]);
        return usage();
      }
      opt.rel_threshold = *v;
    } else if (arg == "--mad-k" && k + 1 < argc) {
      const auto v = util::parse_f64(argv[++k]);
      if (!v) {
        std::fprintf(stderr, "bench_gate: bad --mad-k '%s'\n", argv[k]);
        return usage();
      }
      opt.mad_k = *v;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "bench_gate: unknown flag %s\n", arg.c_str());
      return usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2) {
    return usage();
  }
  try {
    const auto base = load_report(paths[0]);
    const auto cand = load_report(paths[1]);
    const auto result = util::compare_reports(base, cand, opt);
    print_result(result, opt);
    return result.passed(opt) ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_gate: %s\n", e.what());
    return 2;
  }
}
