// permcheck — exhaustive static verifier for the decomposition algebra.
//
// For every (m, n) with --min <= m, n <= --max, proves by enumeration that
// the row shuffle d'_i (Eq. 24) and its inverse (Eq. 31) are mutually
// inverse bijections, that the incremental stepper and the fused
// (i, ⌊j/b⌋) index forms agree with them, that the column shuffle s'_j
// (Eq. 26) factors into p and q (Eqs. 32-34) and composes with the other
// stages to the true transposition permutation l -> l*m mod (mn - 1), and
// that the fastdiv/fastdiv64 reciprocals agree with hardware / and %.
// Exercises core/equations.hpp and the division policies directly — no
// engine code — so the algebra is validated independently.
//
// Exit status: 0 all shapes verified, 1 a predicate failed, 2 bad usage.
//
//   permcheck --max 512                 # the full acceptance sweep
//   permcheck --max 64 --plain-divmod   # verify the ablation policy too
//   permcheck --max 16 --seed-bug       # MUST fail: planted Eq. 24 bug
//   permcheck --max 16 --seed-bug=inverse|column|fastdiv

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/verify.hpp"
#include "util/parse.hpp"
#include "util/threads.hpp"

namespace {

void usage(std::FILE* out) {
  std::fputs(
      "usage: permcheck [--min N] [--max N] [--plain-divmod]\n"
      "                 [--seed-bug[=row|inverse|column|fastdiv]]\n"
      "                 [--threads T] [--quiet]\n",
      out);
}

void print_progress(std::uint64_t done, std::uint64_t total) {
  std::fprintf(stderr, "\rpermcheck: %llu / %llu shapes",
               static_cast<unsigned long long>(done),
               static_cast<unsigned long long>(total));
  if (done >= total) {
    std::fputc('\n', stderr);
  }
  std::fflush(stderr);
}

}  // namespace

int main(int argc, char** argv) {
  inplace::verify::sweep_options opt;
  opt.max_extent = 128;
  opt.progress = print_progress;
  int threads = 0;

  for (int k = 1; k < argc; ++k) {
    const std::string arg = argv[k];
    auto value = [&]() -> const char* {
      if (k + 1 >= argc) {
        std::fprintf(stderr, "permcheck: %s needs a value\n", arg.c_str());
        usage(stderr);
        std::exit(2);
      }
      return argv[++k];
    };
    // Strict parses: "512x" or "" must be a usage error, not extent 512
    // (or 0) — an acceptance sweep over the wrong range proves nothing.
    auto u64_value = [&]() -> std::uint64_t {
      const char* text = value();
      if (const auto v = inplace::util::parse_u64(text)) {
        return *v;
      }
      std::fprintf(stderr, "permcheck: %s wants a decimal value, got '%s'\n",
                   arg.c_str(), text);
      std::exit(2);
    };
    if (arg == "--min") {
      opt.min_extent = u64_value();
    } else if (arg == "--max") {
      opt.max_extent = u64_value();
    } else if (arg == "--threads") {
      const char* text = value();
      const auto t = inplace::util::parse_int(text);
      if (!t) {
        std::fprintf(stderr, "permcheck: --threads wants an integer, got '%s'\n",
                     text);
        std::exit(2);
      }
      threads = *t;
    } else if (arg == "--plain-divmod") {
      opt.use_plain_divmod = true;
    } else if (arg == "--quiet" || arg == "-q") {
      opt.progress = nullptr;
    } else if (arg == "--seed-bug" || arg.rfind("--seed-bug=", 0) == 0) {
      const std::string kind =
          arg == "--seed-bug" ? "row" : arg.substr(std::strlen("--seed-bug="));
      if (kind == "row") {
        opt.inject = inplace::verify::fault::row_shuffle_wrap;
      } else if (kind == "inverse") {
        opt.inject = inplace::verify::fault::inverse_branch;
      } else if (kind == "column") {
        opt.inject = inplace::verify::fault::column_shuffle_drift;
      } else if (kind == "fastdiv") {
        opt.inject = inplace::verify::fault::fastdiv_magic;
      } else {
        std::fprintf(stderr, "permcheck: unknown bug kind '%s'\n",
                     kind.c_str());
        usage(stderr);
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      usage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "permcheck: unknown argument '%s'\n",
                   arg.c_str());
      usage(stderr);
      return 2;
    }
  }
  if (opt.min_extent < 2 || opt.max_extent < opt.min_extent) {
    std::fprintf(stderr, "permcheck: need 2 <= --min <= --max\n");
    return 2;
  }

  const inplace::util::thread_count_guard guard(threads);
  if (threads > 0 && !guard.honored()) {
    std::fprintf(stderr,
                 "permcheck: --threads %d ignored (serial build); running "
                 "on %d thread(s)\n",
                 threads, guard.active());
  }

  const inplace::verify::report rep = inplace::verify::run_sweep(opt);

  if (!rep.ok()) {
    std::fprintf(stderr,
                 "permcheck: FAILED — %llu violated predicate(s) across "
                 "the sweep:\n",
                 static_cast<unsigned long long>(rep.failures));
    for (const auto& msg : rep.messages) {
      std::fprintf(stderr, "  %s\n", msg.c_str());
    }
    if (opt.inject != inplace::verify::fault::none) {
      std::fputs("permcheck: (a --seed-bug fault was injected; failing is "
                 "the expected outcome)\n",
                 stderr);
    }
    return 1;
  }
  if (opt.inject != inplace::verify::fault::none) {
    std::fputs("permcheck: ERROR — a bug was seeded but every check "
               "passed; the verifier is vacuous\n",
               stderr);
    return 1;
  }
  std::printf(
      "permcheck: OK — %llu shapes (%llu <= m, n <= %llu), %llu predicates "
      "verified (Eqs. 23/24/26/31-36, stepper, fastdiv, fastdiv64)\n",
      static_cast<unsigned long long>(rep.shapes),
      static_cast<unsigned long long>(opt.min_extent),
      static_cast<unsigned long long>(opt.max_extent),
      static_cast<unsigned long long>(rep.checks));
  return 0;
}
